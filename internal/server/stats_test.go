package server

import (
	"strings"
	"testing"

	"ferret/internal/protocol"
)

func TestStatsCommand(t *testing.T) {
	client, engine := startServer(t, nil)
	pairs, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if pairs["objects"] != "12" {
		t.Fatalf("objects = %q", pairs["objects"])
	}
	if pairs["segments"] != "12" { // single-segment test objects
		t.Fatalf("segments = %q", pairs["segments"])
	}
	_ = engine
}

func TestDeleteCommand(t *testing.T) {
	client, engine := startServer(t, nil)
	if err := client.Delete("c0/m0"); err != nil {
		t.Fatal(err)
	}
	if engine.Count() != 11 {
		t.Fatalf("count after delete = %d", engine.Count())
	}
	// Deleted object no longer resolvable as a query seed.
	if _, err := client.Query("c0/m0", protocol.QueryParams{K: 1}); err == nil {
		t.Fatal("deleted key still queryable")
	}
	if err := client.Delete("c0/m0"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("double delete: %v", err)
	}
}
