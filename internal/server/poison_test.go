package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"

	"ferret/internal/core"
	"ferret/internal/kvstore"
	"ferret/internal/object"
	"ferret/internal/protocol"
	"ferret/internal/sketch"
)

// TestPoisonedStoreWireError drives a poisoned metadata store through the
// whole stack: after a failed WAL sync, ADDFILE and DELETE answer with the
// distinct "poisoned" wire error (not BUSY — retrying cannot help), the
// rejection counter moves, and queries keep serving the committed corpus.
func TestPoisonedStoreWireError(t *testing.T) {
	const d = 6
	min := make([]float32, d)
	max := make([]float32, d)
	for i := range max {
		max[i] = 1
	}
	fs := kvstore.NewFaultFS(11)
	engine, err := core.Open(core.Config{
		Dir:    "db",
		Sketch: sketch.Params{N: 128, K: 1, Min: min, Max: max, Seed: 9},
		Store:  kvstore.Options{Sync: kvstore.SyncEveryCommit, FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engine.Close() })
	extract := func(path string) (object.Object, error) {
		vec := make([]float32, d)
		for i := range vec {
			vec[i] = float32(len(path)%7)/7 + float32(i)*0.01
		}
		return object.Single(path, vec), nil
	}
	for i := 0; i < 3; i++ {
		o, _ := extract(fmt.Sprintf("seed%d", i))
		if _, err := engine.Ingest(o, nil); err != nil {
			t.Fatal(err)
		}
	}
	srv := &Server{Engine: engine, DefaultK: 5, Extract: extract}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)
	t.Cleanup(func() { srv.Close() })
	client := dialTest(t, l.Addr().String())

	// Fault the next commit's sync: the first ADDFILE fails with the
	// injected error and poisons the store.
	fs.Arm(fs.OpCount()+1, kvstore.FaultErr)
	if err := client.AddFile("f1", nil); err == nil {
		t.Fatal("ADDFILE over the faulted sync succeeded")
	}
	err = client.AddFile("f2", nil)
	if err == nil {
		t.Fatal("ADDFILE on a poisoned store succeeded")
	}
	if !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned ADDFILE error %q does not announce poisoned", err)
	}
	if strings.Contains(err.Error(), "BUSY") {
		t.Fatalf("poisoned ADDFILE error %q claims to be transient", err)
	}
	err = client.Delete("seed0")
	if err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("poisoned DELETE error %q does not announce poisoned", err)
	}
	if got := engine.Telemetry().Value("ferret_ingest_rejected_total"); got != 1 {
		t.Fatalf("ferret_ingest_rejected_total = %v, want 1", got)
	}

	// The committed corpus keeps answering.
	results, err := client.Query("seed0", protocol.QueryParams{K: 3})
	if err != nil {
		t.Fatalf("query on poisoned store: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("query returned %d results, want 3", len(results))
	}
	if n, err := client.Count(); err != nil || n != 3 {
		t.Fatalf("COUNT = %d, %v, want 3", n, err)
	}
}

// TestMutationErrMapping pins the wire mapping of write-path failures:
// wrapped store poisoning becomes the terminal "poisoned" error, a shed
// ingest becomes transient BUSY, anything else passes through.
func TestMutationErrMapping(t *testing.T) {
	wrapped := fmt.Errorf("adding object: %w", kvstore.ErrPoisoned)
	if got := mutationErr(wrapped); got != errPoisoned {
		t.Fatalf("mutationErr(wrapped ErrPoisoned) = %v", got)
	}
	if got := mutationErr(core.ErrOverloaded); got != errIngestBusy {
		t.Fatalf("mutationErr(ErrOverloaded) = %v", got)
	}
	if !strings.Contains(errIngestBusy.Error(), "BUSY") {
		t.Fatalf("shed error %q does not announce BUSY", errIngestBusy)
	}
	other := errors.New("some other failure")
	if got := mutationErr(other); got != other {
		t.Fatalf("mutationErr passed %v, got %v", other, got)
	}
}
