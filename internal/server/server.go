// Package server runs the Ferret toolkit's command-line query interface
// (paper §4.1.4) over TCP: one goroutine per connection, one request line
// per response. The core components and the data-type specific algorithm
// implementations are linked into this single concurrent program, while
// clients (web interface, scripts, evaluation tools) connect remotely.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"ferret/internal/attr"
	"ferret/internal/core"
	"ferret/internal/object"
	"ferret/internal/protocol"
)

// ExtractFunc is the plug-in segmentation and feature extraction entry
// point (the paper's seg_extract_func): it converts a data file into a
// Ferret object.
type ExtractFunc func(path string) (object.Object, error)

// Server dispatches protocol requests against a core engine.
type Server struct {
	Engine *core.Engine
	// Extract handles QUERYFILE and ADDFILE; nil disables them.
	Extract ExtractFunc
	// DefaultK is the result count when the client does not pass k.
	DefaultK int

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// Serve accepts connections on l until Close is called. It always returns
// a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting and closes all active connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		req, err := protocol.ParseRequest(line)
		if err != nil {
			if protocol.WriteError(conn, err) != nil {
				return
			}
			continue
		}
		if err := s.dispatch(conn, req); err != nil {
			return // transport error: drop the connection
		}
	}
}

// dispatch handles one request, writing exactly one response. The returned
// error is a transport error; request-level failures become ERR responses.
func (s *Server) dispatch(conn net.Conn, req protocol.Request) error {
	switch req.Cmd {
	case protocol.CmdPing:
		return protocol.WriteResults(conn, nil)

	case protocol.CmdCount:
		return protocol.WritePairs(conn, map[string]string{"count": strconv.Itoa(s.Engine.Count())})

	case protocol.CmdQuery:
		key := req.Args["key"]
		id, ok := s.Engine.Meta().LookupKey(key)
		if !ok {
			return protocol.WriteError(conn, fmt.Errorf("unknown object key %q", key))
		}
		opt, err := s.queryOptions(req)
		if err != nil {
			return protocol.WriteError(conn, err)
		}
		var results []core.Result
		if sw := req.Args["segweights"]; sw != "" {
			// Adjusted feature-vector weights (paper §4.1.4): rebuild the
			// query object with scaled segment weights.
			o, ok := s.Engine.Meta().GetObject(id)
			if !ok {
				return protocol.WriteError(conn, errors.New("segweights requires stored feature vectors"))
			}
			if err := reweight(&o, sw); err != nil {
				return protocol.WriteError(conn, err)
			}
			results, err = s.Engine.Query(o, opt)
		} else {
			results, err = s.Engine.QueryByID(id, opt)
		}
		if err != nil {
			return protocol.WriteError(conn, err)
		}
		return writeCoreResults(conn, results)

	case protocol.CmdQueryFile:
		if s.Extract == nil {
			return protocol.WriteError(conn, errors.New("no extractor plugged in"))
		}
		o, err := s.Extract(req.Args["path"])
		if err != nil {
			return protocol.WriteError(conn, err)
		}
		if sw := req.Args["segweights"]; sw != "" {
			if err := reweight(&o, sw); err != nil {
				return protocol.WriteError(conn, err)
			}
		}
		opt, err := s.queryOptions(req)
		if err != nil {
			return protocol.WriteError(conn, err)
		}
		results, err := s.Engine.Query(o, opt)
		if err != nil {
			return protocol.WriteError(conn, err)
		}
		return writeCoreResults(conn, results)

	case protocol.CmdAddFile:
		if s.Extract == nil {
			return protocol.WriteError(conn, errors.New("no extractor plugged in"))
		}
		o, err := s.Extract(req.Args["path"])
		if err != nil {
			return protocol.WriteError(conn, err)
		}
		attrs := attrArgs(req)
		if _, err := s.Engine.Ingest(o, attrs); err != nil {
			return protocol.WriteError(conn, err)
		}
		return protocol.WriteResults(conn, nil)

	case protocol.CmdSearch:
		q := attr.Query{Equal: attrArgs(req)}
		if kw := req.Args["keywords"]; kw != "" {
			q.Keywords = strings.Split(kw, ",")
		}
		if len(q.Keywords) == 0 && len(q.Equal) == 0 {
			return protocol.WriteError(conn, errors.New("SEARCH needs keywords or attributes"))
		}
		ids := s.Engine.Attrs().Search(q)
		out := make([]protocol.Result, 0, len(ids))
		for _, id := range ids {
			out = append(out, protocol.Result{Key: s.Engine.Meta().Key(id)})
		}
		return protocol.WriteResults(conn, out)

	case protocol.CmdStats:
		st := s.Engine.Stat()
		return protocol.WritePairs(conn, map[string]string{
			"objects":          strconv.Itoa(st.Objects),
			"deleted":          strconv.Itoa(st.Deleted),
			"segments":         strconv.Itoa(st.Segments),
			"sketch_bits":      strconv.Itoa(st.SketchBits),
			"sketch_bytes":     strconv.Itoa(st.SketchBytes),
			"indexed_segments": strconv.Itoa(st.IndexedSegments),
		})

	case protocol.CmdDelete:
		id, ok := s.Engine.Meta().LookupKey(req.Args["key"])
		if !ok {
			return protocol.WriteError(conn, fmt.Errorf("unknown object key %q", req.Args["key"]))
		}
		if err := s.Engine.Delete(id); err != nil {
			return protocol.WriteError(conn, err)
		}
		return protocol.WriteResults(conn, nil)

	case protocol.CmdInfo:
		id, ok := s.Engine.Meta().LookupKey(req.Args["key"])
		if !ok {
			return protocol.WriteError(conn, fmt.Errorf("unknown object key %q", req.Args["key"]))
		}
		attrs, _ := s.Engine.Attrs().Get(id)
		pairs := map[string]string{"key": req.Args["key"], "id": strconv.FormatUint(uint64(id), 10)}
		for k, v := range attrs {
			pairs["attr:"+k] = v
		}
		return protocol.WritePairs(conn, pairs)

	default:
		return protocol.WriteError(conn, fmt.Errorf("unknown command %q", req.Cmd))
	}
}

// queryOptions translates protocol arguments into engine query options,
// resolving the attribute restriction into an ID set.
func (s *Server) queryOptions(req protocol.Request) (core.QueryOptions, error) {
	opt := core.QueryOptions{K: s.DefaultK}
	if v := req.Args["k"]; v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			return opt, fmt.Errorf("bad k %q", v)
		}
		opt.K = k
	}
	switch strings.ToLower(req.Args["mode"]) {
	case "", "filtering", "filter":
		opt.Mode = core.Filtering
	case "bruteforce", "original":
		opt.Mode = core.BruteForceOriginal
	case "sketch", "bruteforcesketch":
		opt.Mode = core.BruteForceSketch
	default:
		return opt, fmt.Errorf("unknown mode %q", req.Args["mode"])
	}
	// Attribute restriction: run the attribute search first and restrict
	// the similarity scan to its matches (paper §4.1.2).
	q := attr.Query{Equal: attrArgs(req)}
	if kw := req.Args["keywords"]; kw != "" {
		q.Keywords = strings.Split(kw, ",")
	}
	if len(q.Keywords) > 0 || len(q.Equal) > 0 {
		opt.Restrict = map[object.ID]bool{}
		for _, id := range s.Engine.Attrs().Search(q) {
			opt.Restrict[id] = true
		}
	}
	return opt, nil
}

// reweight scales the query object's segment weights by the comma-separated
// factors in spec (the command-line interface's "adjusted weights for
// feature vectors", §4.1.4). Fewer factors than segments scale a prefix;
// weights are renormalized afterwards.
func reweight(o *object.Object, spec string) error {
	factors := strings.Split(spec, ",")
	if len(factors) > len(o.Segments) {
		return fmt.Errorf("segweights has %d factors for %d segments", len(factors), len(o.Segments))
	}
	for i, f := range factors {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
		if err != nil || v < 0 {
			return fmt.Errorf("bad segment weight factor %q", f)
		}
		o.Segments[i].Weight *= float32(v)
	}
	o.NormalizeWeights()
	if err := o.Validate(); err != nil {
		return fmt.Errorf("adjusted weights produce invalid object: %v", err)
	}
	return nil
}

// attrArgs extracts attr:<name>=<value> arguments.
func attrArgs(req protocol.Request) attr.Attrs {
	var out attr.Attrs
	for k, v := range req.Args {
		if name, ok := strings.CutPrefix(k, "attr:"); ok {
			if out == nil {
				out = attr.Attrs{}
			}
			out[name] = v
		}
	}
	return out
}

func writeCoreResults(conn net.Conn, results []core.Result) error {
	out := make([]protocol.Result, len(results))
	for i, r := range results {
		out[i] = protocol.Result{Key: r.Key, Distance: r.Distance}
	}
	return protocol.WriteResults(conn, out)
}
