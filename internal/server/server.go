// Package server runs the Ferret toolkit's command-line query interface
// (paper §4.1.4) over TCP: one goroutine per connection, one request line
// per response. The core components and the data-type specific algorithm
// implementations are linked into this single concurrent program, while
// clients (web interface, scripts, evaluation tools) connect remotely.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ferret/internal/attr"
	"ferret/internal/core"
	"ferret/internal/kvstore"
	"ferret/internal/object"
	"ferret/internal/protocol"
	"ferret/internal/telemetry"
	"ferret/internal/telemetry/trace"
)

// ExtractFunc is the plug-in segmentation and feature extraction entry
// point (the paper's seg_extract_func): it converts a data file into a
// Ferret object.
type ExtractFunc func(path string) (object.Object, error)

// Server dispatches protocol requests against a core engine.
type Server struct {
	Engine *core.Engine
	// Extract handles QUERYFILE and ADDFILE; nil disables them.
	Extract ExtractFunc
	// DefaultK is the result count when the client does not pass k.
	DefaultK int
	// QueryBudget, when positive, is the per-query time budget: a query
	// whose budget expires mid-rank answers with its best results so far,
	// flagged degraded (see core.QueryOptions.Budget). Clients may request
	// a tighter budget per query (budget=...), never a looser one.
	QueryBudget time.Duration
	// Proto selects the wire protocols the server speaks: "" or "v2"
	// accepts binary-protocol upgrades (HELLO proto=v2), "text" refuses
	// them and keeps every connection on the text protocol.
	Proto string
	// MaxConns, when positive, caps concurrent client connections; excess
	// connections are answered with a single BUSY error and closed
	// (ferret_conns_shed_total counts them).
	MaxConns int
	// ReadTimeout, when positive, bounds the wait for each request line —
	// an idle-connection timeout.
	ReadTimeout time.Duration
	// WriteTimeout, when positive, bounds each response write.
	WriteTimeout time.Duration
	// Telemetry is the registry the server records request metrics into.
	// nil uses the engine's registry, so one /metrics endpoint covers both
	// the serving layer and the query pipeline.
	Telemetry *telemetry.Registry
	// Logger, when set, logs connection lifecycle events.
	Logger *telemetry.Logger

	metOnce sync.Once
	met     *serverMetrics

	// draining tells connection handlers to close after the in-flight
	// request instead of reading another (set by Shutdown).
	draining atomic.Bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]*connState
	wg       sync.WaitGroup
	closed   bool
	// queryCancel aborts every in-flight query's context; Shutdown fires it
	// when the drain grace expires so handlers unwind promptly instead of
	// finishing arbitrarily long scans against a closed connection.
	queryCtx    context.Context
	queryCancel context.CancelFunc
}

// connState tracks one client connection; busy is true while a request is
// being dispatched, so Shutdown can tell in-flight work from idle
// connections. tr is the connection's trace recording buffer: one request is
// in flight at a time per connection, so traced requests arm it in place and
// tracing adds no per-request allocation to the serving layer.
type connState struct {
	conn net.Conn
	busy atomic.Bool
	tr   trace.Active
}

// serverMetrics are the serving layer's telemetry handles: per-command
// request counters, transport byte counters, error counts, and gauges for
// in-flight work.
type serverMetrics struct {
	reg          *telemetry.Registry
	requests     map[string]*telemetry.Counter // ferret_server_requests_total{cmd=...}
	unknown      *telemetry.Counter            // ferret_server_unknown_requests_total
	errors       *telemetry.Counter            // ferret_server_errors_total
	bytesRead    *telemetry.Counter            // ferret_server_read_bytes_total
	bytesWritten *telemetry.Counter            // ferret_server_written_bytes_total
	inflight     *telemetry.Gauge              // ferret_server_inflight_requests
	conns        *telemetry.Gauge              // ferret_server_connections
	connsTotal   *telemetry.Counter            // ferret_server_connections_total
	shed         *telemetry.Counter            // ferret_conns_shed_total
	latency      *telemetry.Histogram          // ferret_server_request_seconds
	v2Conns      *telemetry.Gauge              // ferret_server_v2_connections
	v2Upgrades   *telemetry.Counter            // ferret_server_v2_upgrades_total
	wireGets     *telemetry.Gauge              // ferret_wire_buf_gets_total
	wireMisses   *telemetry.Gauge              // ferret_wire_buf_misses_total
	wirePuts     *telemetry.Gauge              // ferret_wire_buf_puts_total
}

// refreshWireBuf publishes the wire-buffer pool counters into their
// telemetry gauges (called when a stats or telemetry dump is assembled).
func (m *serverMetrics) refreshWireBuf() {
	m.wireGets.Set(wireBufGets.Load())
	m.wireMisses.Set(wireBufMisses.Load())
	m.wirePuts.Set(wireBufPuts.Load())
}

// metrics lazily resolves the registry (Telemetry field, else the engine's)
// and registers the serving-layer metrics exactly once per Server.
func (s *Server) metrics() *serverMetrics {
	s.metOnce.Do(func() {
		reg := s.Telemetry
		if reg == nil && s.Engine != nil {
			reg = s.Engine.Telemetry()
		}
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		m := &serverMetrics{
			reg:          reg,
			requests:     make(map[string]*telemetry.Counter),
			unknown:      reg.Counter("ferret_server_unknown_requests_total", "Requests with an unrecognized command."),
			errors:       reg.Counter("ferret_server_errors_total", "Requests answered with an ERR response."),
			bytesRead:    reg.Counter("ferret_server_read_bytes_total", "Protocol bytes read from clients."),
			bytesWritten: reg.Counter("ferret_server_written_bytes_total", "Protocol bytes written to clients."),
			inflight:     reg.Gauge("ferret_server_inflight_requests", "Requests currently being dispatched."),
			conns:        reg.Gauge("ferret_server_connections", "Open client connections."),
			connsTotal:   reg.Counter("ferret_server_connections_total", "Client connections accepted."),
			shed:         reg.Counter("ferret_conns_shed_total", "Connections refused with BUSY at the connection limit."),
			latency:      reg.Histogram("ferret_server_request_seconds", "Protocol request latency in seconds.", nil),
			v2Conns:      reg.Gauge("ferret_server_v2_connections", "Open connections speaking the binary protocol v2."),
			v2Upgrades:   reg.Counter("ferret_server_v2_upgrades_total", "Successful HELLO proto=v2 negotiations."),
			wireGets:     reg.Gauge("ferret_wire_buf_gets_total", "Wire buffers drawn from the size-class pools."),
			wireMisses:   reg.Gauge("ferret_wire_buf_misses_total", "Wire-buffer gets that had to allocate."),
			wirePuts:     reg.Gauge("ferret_wire_buf_puts_total", "Wire buffers returned to the size-class pools."),
		}
		for _, cmd := range []string{
			protocol.CmdPing, protocol.CmdCount, protocol.CmdQuery,
			protocol.CmdBatchQuery, protocol.CmdQueryFile, protocol.CmdAddFile,
			protocol.CmdSearch, protocol.CmdInfo, protocol.CmdStats,
			protocol.CmdTelemetry, protocol.CmdDelete, protocol.CmdTrace,
		} {
			m.requests[cmd] = reg.Counter("ferret_server_requests_total", "Protocol requests dispatched, by command.", "cmd", cmd)
		}
		s.met = m
	})
	return s.met
}

// countingWriter publishes everything written through it to a byte counter.
type countingWriter struct {
	w io.Writer
	c *telemetry.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(n)
	return n, err
}

// errBusy is the polite shed response at the connection limit. The BUSY
// marker is load-bearing: clients (evaltool's retry loop) treat it as
// transient and back off instead of failing the run.
var errBusy = errors.New("BUSY: server at connection limit, retry later")

// errIngestBusy is the bounded ingest queue's shed response. Same BUSY
// marker as the connection limit: transient, back off and retry.
var errIngestBusy = errors.New("BUSY: ingest queue full, retry later")

// errPoisoned is the wire form of a poisoned metadata store: a failed fsync
// made durability unknowable, so every further mutation is rejected until
// the process restarts and recovery replays the committed prefix. The
// "poisoned" marker is distinct from BUSY on purpose — retrying cannot
// help, an operator has to intervene.
var errPoisoned = errors.New("poisoned: metadata store rejects writes after a failed sync, restart to recover")

// mutationErr maps engine write-path failures to their wire forms; other
// errors pass through unchanged.
func mutationErr(err error) error {
	switch {
	case errors.Is(err, kvstore.ErrPoisoned):
		return errPoisoned
	case errors.Is(err, core.ErrOverloaded):
		return errIngestBusy
	}
	return err
}

// Serve accepts connections on l until ctx is cancelled or Shutdown/Close
// is called. It always returns a non-nil error (net.ErrClosed after a clean
// shutdown). In-flight queries run under a context derived from ctx's
// values but cancelled only by Shutdown's grace expiry, so a cancelled ctx
// stops accepting without aborting work mid-drain.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.listener = l
	if s.conns == nil {
		s.conns = make(map[net.Conn]*connState)
	}
	if s.queryCtx == nil {
		s.queryCtx, s.queryCancel = context.WithCancel(context.WithoutCancel(ctx))
	}
	qctx := s.queryCtx
	s.mu.Unlock()
	unwatch := context.AfterFunc(ctx, func() { l.Close() })
	defer unwatch()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		if s.MaxConns > 0 && len(s.conns) >= s.MaxConns {
			s.mu.Unlock()
			s.shedConn(conn)
			continue
		}
		st := &connState{conn: conn}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(qctx, st)
		}()
	}
}

// shedConn answers one over-limit connection with BUSY and closes it.
func (s *Server) shedConn(conn net.Conn) {
	met := s.metrics()
	met.shed.Inc()
	if s.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
	protocol.WriteError(conn, errBusy)
	conn.Close()
	s.Logger.Warn("connection shed: at connection limit",
		"remote", conn.RemoteAddr().String(), "max_conns", s.MaxConns)
}

// Close stops accepting and closes all active connections immediately
// (zero-grace Shutdown).
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}

// Shutdown stops accepting and drains: idle connections close immediately,
// while connections with a request in flight get until ctx expires to
// finish it. On grace expiry the remaining queries' contexts are cancelled
// and their connections closed. It reports how many busy connections
// drained cleanly versus were aborted, and ctx's error when the grace
// expired. Safe to call concurrently with Serve; subsequent calls are
// no-ops.
func (s *Server) Shutdown(ctx context.Context) (drained, aborted int, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return 0, 0, nil
	}
	s.closed = true
	s.draining.Store(true)
	if s.listener != nil {
		s.listener.Close()
	}
	var busy []*connState
	for c, st := range s.conns {
		if st.busy.Load() {
			busy = append(busy, st)
		} else {
			// Idle: no request in flight, nothing to lose.
			c.Close()
		}
	}
	cancelQueries := s.queryCancel
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		for _, st := range busy {
			if st.busy.Load() {
				aborted++
			}
			st.conn.Close()
		}
		if cancelQueries != nil {
			cancelQueries()
		}
		<-done
	}
	drained = len(busy) - aborted
	return drained, aborted, err
}

func (s *Server) handleConn(ctx context.Context, st *connState) {
	conn := st.conn
	met := s.metrics()
	met.conns.Add(1)
	met.connsTotal.Inc()
	s.Logger.Debug("connection opened", "remote", conn.RemoteAddr().String())
	defer func() {
		conn.Close()
		met.conns.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// The writer is boxed into its interface once per connection, so the
	// per-request dispatch calls don't re-box it (an allocation the binary
	// fast path's 0 allocs/op contract cannot afford).
	var w io.Writer = countingWriter{w: conn, c: met.bytesWritten}
	rd := bufio.NewReaderSize(conn, 1<<16)
	for {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		line, err := readLine(rd)
		if err != nil {
			return
		}
		met.bytesRead.Add(len(line) + 1) // +1 for the newline
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Busy from parse to response: Shutdown counts this connection as
		// in-flight and gives it the drain grace.
		st.busy.Store(true)
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		if line == "HELLO" || strings.HasPrefix(line, "HELLO ") {
			upgraded, err := s.handleHello(w, line)
			st.busy.Store(false)
			if err != nil {
				return
			}
			if upgraded {
				// The reader carries over: bytes the client pipelined
				// behind the HELLO are already binary frames.
				s.serveBinary(ctx, conn, w, rd, st)
				return
			}
			if s.draining.Load() {
				return
			}
			continue
		}
		err = s.handleLine(ctx, w, st, line)
		st.busy.Store(false)
		if err != nil {
			return // transport error: drop the connection
		}
		if s.draining.Load() {
			return // finish the drained request, then hang up
		}
	}
}

// maxLineBytes bounds one text request line (the old Scanner buffer limit).
const maxLineBytes = 1 << 20

// readLine reads one newline-terminated request line, enforcing the length
// cap without unbounded buffering. A final unterminated line before EOF is
// still returned (Scanner semantics).
func readLine(rd *bufio.Reader) (string, error) {
	var long []byte
	for {
		frag, err := rd.ReadSlice('\n')
		if long == nil && err == nil {
			return string(frag[:len(frag)-1]), nil // common case: one read
		}
		long = append(long, frag...)
		if len(long) > maxLineBytes {
			return "", errors.New("server: request line too long")
		}
		switch err {
		case nil:
			return string(long[:len(long)-1]), nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(long) > 0 {
				return string(long), nil
			}
			return "", io.EOF
		default:
			return "", err
		}
	}
}

// handleHello answers a HELLO negotiation line: accepting (proto=v2 on a
// v2-speaking server) writes the confirming pairs response and reports
// upgraded; refusals write ERR and leave the connection on the text
// protocol. The returned error is a transport error.
func (s *Server) handleHello(w io.Writer, line string) (bool, error) {
	req, err := protocol.ParseRequest(line)
	if err != nil {
		return false, s.writeErr(w, err)
	}
	if proto := req.Args["proto"]; proto != protocol.HelloV2Value {
		return false, s.writeErr(w, fmt.Errorf("unsupported protocol %q", proto))
	}
	if s.Proto == "text" {
		return false, s.writeErr(w, errors.New("binary protocol disabled on this server"))
	}
	if err := protocol.WritePairs(w, map[string]string{"proto": protocol.HelloV2Value}); err != nil {
		return false, err
	}
	s.metrics().v2Upgrades.Inc()
	return true, nil
}

// handleLine parses and dispatches one request line, writing exactly one
// response. The returned error is a transport error. The parse timestamp is
// taken before ParseRequest so a traced query's first span covers protocol
// parsing.
func (s *Server) handleLine(ctx context.Context, w io.Writer, st *connState, line string) error {
	parseStart := time.Now()
	req, err := protocol.ParseRequest(line)
	if err != nil {
		return s.writeErr(w, err)
	}
	return s.dispatch(ctx, w, st, req, parseStart)
}

// writeErr answers a request-level failure with an ERR response, counting
// it in the serving-layer error counter.
func (s *Server) writeErr(w io.Writer, err error) error {
	s.metrics().errors.Inc()
	return protocol.WriteError(w, err)
}

// dispatch handles one request, writing exactly one response. The returned
// error is a transport error; request-level failures become ERR responses.
// Every request is counted by command, gauged while in flight, and timed
// into the server latency histogram. ctx cancels in-flight queries (fired
// by Shutdown when the drain grace expires).
func (s *Server) dispatch(ctx context.Context, w io.Writer, st *connState, req protocol.Request, parseStart time.Time) error {
	met := s.metrics()
	if c, ok := met.requests[req.Cmd]; ok {
		c.Inc()
	} else {
		met.unknown.Inc()
	}
	met.inflight.Add(1)
	start := time.Now()
	defer func() {
		met.inflight.Add(-1)
		met.latency.ObserveSince(start)
	}()

	switch req.Cmd {
	case protocol.CmdPing:
		return protocol.WriteResults(w, nil)

	case protocol.CmdCount:
		return protocol.WritePairs(w, map[string]string{"count": strconv.Itoa(s.Engine.Count())})

	case protocol.CmdQuery:
		key := req.Args["key"]
		id, ok := s.Engine.Meta().LookupKey(key)
		if !ok {
			return s.writeErr(w, fmt.Errorf("unknown object key %q", key))
		}
		opt, err := s.queryOptions(req)
		if err != nil {
			return s.writeErr(w, err)
		}
		tr, err := s.armTrace(req, st, parseStart)
		if err != nil {
			return s.writeErr(w, err)
		}
		// Safety net for the error returns below; writeAnswer's Finish (after
		// the write span) disarms the trace, making this a no-op.
		defer tr.Finish()
		opt.Trace = tr
		var ans core.Answer
		if sw := req.Args["segweights"]; sw != "" {
			// Adjusted feature-vector weights (paper §4.1.4): rebuild the
			// query object with scaled segment weights.
			o, ok := s.Engine.Meta().GetObject(id)
			if !ok {
				return s.writeErr(w, errors.New("segweights requires stored feature vectors"))
			}
			if err := reweight(&o, sw); err != nil {
				return s.writeErr(w, err)
			}
			ans, err = s.Engine.Search(ctx, o, opt)
		} else {
			ans, err = s.Engine.SearchByID(ctx, id, opt)
		}
		if err != nil {
			return s.writeErr(w, err)
		}
		return writeAnswer(w, ans, tr)

	case protocol.CmdBatchQuery:
		return s.dispatchBatch(ctx, w, req)

	case protocol.CmdQueryFile:
		if s.Extract == nil {
			return s.writeErr(w, errors.New("no extractor plugged in"))
		}
		o, err := s.Extract(req.Args["path"])
		if err != nil {
			return s.writeErr(w, err)
		}
		if sw := req.Args["segweights"]; sw != "" {
			if err := reweight(&o, sw); err != nil {
				return s.writeErr(w, err)
			}
		}
		opt, err := s.queryOptions(req)
		if err != nil {
			return s.writeErr(w, err)
		}
		tr, err := s.armTrace(req, st, parseStart)
		if err != nil {
			return s.writeErr(w, err)
		}
		defer tr.Finish()
		opt.Trace = tr
		ans, err := s.Engine.Search(ctx, o, opt)
		if err != nil {
			return s.writeErr(w, err)
		}
		return writeAnswer(w, ans, tr)

	case protocol.CmdAddFile:
		if s.Extract == nil {
			return s.writeErr(w, errors.New("no extractor plugged in"))
		}
		o, err := s.Extract(req.Args["path"])
		if err != nil {
			return s.writeErr(w, err)
		}
		attrs := attrArgs(req)
		// Through the bounded ingest queue when one is configured: a full
		// queue blocks this handler (backpressure) or sheds with BUSY.
		if _, err := s.Engine.IngestQueued(ctx, o, attrs); err != nil {
			return s.writeErr(w, mutationErr(err))
		}
		return protocol.WriteResults(w, nil)

	case protocol.CmdSearch:
		q := attr.Query{Equal: attrArgs(req)}
		if kw := req.Args["keywords"]; kw != "" {
			q.Keywords = strings.Split(kw, ",")
		}
		if len(q.Keywords) == 0 && len(q.Equal) == 0 {
			return s.writeErr(w, errors.New("SEARCH needs keywords or attributes"))
		}
		ids := s.Engine.Attrs().Search(q)
		out := make([]protocol.Result, 0, len(ids))
		for _, id := range ids {
			out = append(out, protocol.Result{Key: s.Engine.Meta().Key(id)})
		}
		return protocol.WriteResults(w, out)

	case protocol.CmdStats:
		return protocol.WritePairs(w, s.statsPairs())

	case protocol.CmdTelemetry:
		// Full telemetry dump: every registered series as flat name=value
		// pairs, covering both the query pipeline and the serving layer.
		met.refreshWireBuf()
		pairs := map[string]string{}
		regs := []*telemetry.Registry{met.reg}
		if er := s.Engine.Telemetry(); er != met.reg {
			regs = append(regs, er)
		}
		for _, reg := range regs {
			reg.Each(func(name string, v float64) { pairs[name] = formatMetric(v) })
		}
		return protocol.WritePairs(w, pairs)

	case protocol.CmdDelete:
		id, ok := s.Engine.Meta().LookupKey(req.Args["key"])
		if !ok {
			return s.writeErr(w, fmt.Errorf("unknown object key %q", req.Args["key"]))
		}
		if err := s.Engine.Delete(id); err != nil {
			return s.writeErr(w, mutationErr(err))
		}
		return protocol.WriteResults(w, nil)

	case protocol.CmdTrace:
		return s.dispatchTrace(w, req)

	case protocol.CmdInfo:
		id, ok := s.Engine.Meta().LookupKey(req.Args["key"])
		if !ok {
			return s.writeErr(w, fmt.Errorf("unknown object key %q", req.Args["key"]))
		}
		attrs, _ := s.Engine.Attrs().Get(id)
		pairs := map[string]string{"key": req.Args["key"], "id": strconv.FormatUint(uint64(id), 10)}
		for k, v := range attrs {
			pairs["attr:"+k] = v
		}
		return protocol.WritePairs(w, pairs)

	default:
		return s.writeErr(w, fmt.Errorf("unknown command %q", req.Cmd))
	}
}

// statsPairs assembles the STATS response: structural engine statistics,
// headline pipeline counters, result-cache health and serving-protocol
// health (shared by the text and binary dispatchers).
func (s *Server) statsPairs() map[string]string {
	met := s.metrics()
	st := s.Engine.Stat()
	pairs := map[string]string{
		"objects":          strconv.Itoa(st.Objects),
		"deleted":          strconv.Itoa(st.Deleted),
		"segments":         strconv.Itoa(st.Segments),
		"sketch_bits":      strconv.Itoa(st.SketchBits),
		"sketch_bytes":     strconv.Itoa(st.SketchBytes),
		"indexed_segments": strconv.Itoa(st.IndexedSegments),
		"hindex_tables":    strconv.Itoa(st.HIndexTables),
		"hindex_load":      strconv.FormatFloat(st.HIndexLoad, 'f', 3, 64),
	}
	// Telemetry extension: headline pipeline counters and latency
	// percentiles ride along with the structural statistics — the result
	// cache's hit/miss/invalidation health included.
	reg := s.Engine.Telemetry()
	for flat, name := range map[string]string{
		"queries_total":                  "ferret_query_total",
		"query_errors_total":             "ferret_query_errors_total",
		"ingests_total":                  "ferret_ingest_total",
		"deletes_total":                  "ferret_delete_total",
		"inflight_queries":               "ferret_inflight_queries",
		"candidates_total":               "ferret_filter_candidates_total",
		"query_p50_seconds":              "ferret_query_seconds_p50",
		"query_p99_seconds":              "ferret_query_seconds_p99",
		"result_cache_hits_total":        "ferret_result_cache_hits_total",
		"result_cache_misses_total":      "ferret_result_cache_misses_total",
		"result_cache_invalidated_total": "ferret_result_cache_invalidated_total",
		"result_cache_evictions_total":   "ferret_result_cache_evictions_total",
		"result_cache_entries":           "ferret_result_cache_entries",
		"result_cache_bytes":             "ferret_result_cache_bytes",
	} {
		pairs[flat] = formatMetric(reg.Value(name))
	}
	// The index's candidate-reduction ratio: rows verified per row an
	// unindexed scan would have streamed, over all served probes.
	if base := reg.Value("ferret_hindex_baseline_rows_total"); base > 0 {
		pairs["hindex_candidate_ratio"] = formatMetric(reg.Value("ferret_hindex_candidates_total") / base)
	}
	// Serving-protocol health: binary-protocol adoption and wire-buffer
	// pool effectiveness.
	met.refreshWireBuf()
	pairs["v2_connections"] = strconv.FormatInt(met.v2Conns.Value(), 10)
	pairs["v2_upgrades_total"] = strconv.FormatUint(met.v2Upgrades.Value(), 10)
	pairs["wire_buf_gets_total"] = strconv.FormatInt(wireBufGets.Load(), 10)
	pairs["wire_buf_misses_total"] = strconv.FormatInt(wireBufMisses.Load(), 10)
	pairs["wire_buf_puts_total"] = strconv.FormatInt(wireBufPuts.Load(), 10)
	return pairs
}

// armTrace arms the connection's trace recording buffer when the request
// asked for tracing. trace=on|1|new mints a fresh trace ID; any other value
// is a propagated trace ID to adopt, so a caller that spans several systems
// can stitch the query into its own trace. Traced requests are always
// retained (forced), and the protocol parse is backfilled as the first span.
// Returns nil with no error for untraced requests.
func (s *Server) armTrace(req protocol.Request, st *connState, parseStart time.Time) (*trace.Active, error) {
	v := req.Args["trace"]
	if v == "" {
		return nil, nil
	}
	tracer := s.Engine.Tracer()
	if tracer == nil {
		return nil, errors.New("tracing disabled on this server")
	}
	var id trace.TraceID
	switch v {
	case "on", "1", "new":
		// Fresh ID (BeginWith allocates one for 0).
	default:
		pid, err := trace.ParseTraceID(v)
		if err != nil {
			return nil, err
		}
		id = pid
	}
	tracer.BeginWith(&st.tr, strings.ToLower(req.Cmd), id, true)
	st.tr.Record("parse", parseStart, time.Since(parseStart))
	return &st.tr, nil
}

// stageTimings converts aggregated trace stages to their wire form.
func stageTimings(stages []trace.Stage) []protocol.StageTiming {
	out := make([]protocol.StageTiming, len(stages))
	for i, st := range stages {
		out[i] = protocol.StageTiming{Name: st.Name, Dur: int64(st.Dur)}
	}
	return out
}

// dispatchTrace answers the TRACE command from the tracer's retained rings
// as compact one-line renderings, newest first: recent<i> from the sampled
// ring and slow<i> from the slow-query log. Args: n caps each list (default
// 10), slow=1 restricts the answer to the slow-query log, id=<hex> looks up
// one retained trace (key trace0).
func (s *Server) dispatchTrace(w io.Writer, req protocol.Request) error {
	n := 0
	if v := req.Args["n"]; v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			return s.writeErr(w, fmt.Errorf("bad n %q", v))
		}
		n = k
	}
	pairs, err := s.tracePairs(n, req.Args["slow"] != "", req.Args["id"])
	if err != nil {
		return s.writeErr(w, err)
	}
	return protocol.WritePairs(w, pairs)
}

// tracePairs assembles a TRACE answer (shared by the text and binary
// dispatchers): one retained trace by ID, or the newest-first recent and
// slow lists capped at n (default 10).
func (s *Server) tracePairs(n int, slowOnly bool, id string) (map[string]string, error) {
	tracer := s.Engine.Tracer()
	if tracer == nil {
		return nil, errors.New("tracing disabled on this server")
	}
	if id != "" {
		tid, err := trace.ParseTraceID(id)
		if err != nil {
			return nil, err
		}
		tr := tracer.Find(tid)
		if tr == nil {
			return nil, fmt.Errorf("trace %s not retained", tid)
		}
		return map[string]string{"trace0": tr.Compact()}, nil
	}
	if n <= 0 {
		n = 10
	}
	pairs := map[string]string{}
	add := func(prefix string, traces []*trace.Trace) {
		for i, tr := range traces {
			if i >= n {
				break
			}
			pairs[prefix+strconv.Itoa(i)] = tr.Compact()
		}
	}
	add("slow", tracer.Slow())
	if !slowOnly {
		add("recent", tracer.Recent())
	}
	return pairs, nil
}

// maxBatchKeys caps one BATCHQUERY request, keeping a single request line's
// work (and its response) bounded.
const maxBatchKeys = 256

// dispatchBatch handles BATCHQUERY: n indexed keys (key0..key{n-1}) sharing
// one set of query parameters, answered through the engine's batched search
// so concurrent keys share arena scans. Per-key failures (unknown key,
// missing feature vectors) are reported inside their group without failing
// the rest of the batch.
func (s *Server) dispatchBatch(ctx context.Context, w io.Writer, req protocol.Request) error {
	n, err := strconv.Atoi(req.Args["n"])
	if err != nil || n <= 0 || n > maxBatchKeys {
		return s.writeErr(w, fmt.Errorf("bad batch size %q (1..%d)", req.Args["n"], maxBatchKeys))
	}
	opt, err := s.queryOptions(req)
	if err != nil {
		return s.writeErr(w, err)
	}
	// Tracing a batch: each query gets its own engine-armed, force-retained
	// trace, and its group's flags carry the trace ID and stage breakdown.
	// All coalesced groups' scan spans share one Ref span ID — the shared
	// arena scan they rode.
	if req.Args["trace"] != "" {
		if s.Engine.Tracer() == nil {
			return s.writeErr(w, errors.New("tracing disabled on this server"))
		}
		opt.ForceTrace = true
	}
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		key, ok := req.Args["key"+strconv.Itoa(i)]
		if !ok {
			return s.writeErr(w, fmt.Errorf("batch of %d is missing key%d", n, i))
		}
		keys[i] = key
	}
	return protocol.WriteBatch(w, s.runBatch(ctx, keys, opt))
}

// runBatch answers one batch of keys through the engine's batched search
// (shared by the text and binary dispatchers). Per-key failures are
// reported inside their group without failing the rest.
func (s *Server) runBatch(ctx context.Context, keys []string, opt core.QueryOptions) []protocol.BatchItem {
	n := len(keys)
	items := make([]protocol.BatchItem, n)
	queries := make([]object.Object, 0, n)
	slots := make([]int, 0, n) // queries[j] answers items[slots[j]]
	for i, key := range keys {
		id, ok := s.Engine.Meta().LookupKey(key)
		if !ok {
			items[i].Err = fmt.Sprintf("unknown object key %q", key)
			continue
		}
		o, ok := s.Engine.Meta().GetObject(id)
		if !ok {
			// Sketch-only store: no feature vectors to batch on. Answer this
			// key through the per-query sketch path instead.
			ans, err := s.Engine.SearchByID(ctx, id, opt)
			if err != nil {
				items[i].Err = err.Error()
				continue
			}
			items[i] = answerItem(ans)
			continue
		}
		queries = append(queries, o)
		slots = append(slots, i)
	}
	answers, errs := s.Engine.SearchBatch(ctx, queries, opt)
	for j, slot := range slots {
		if errs[j] != nil {
			items[slot].Err = errs[j].Error()
			continue
		}
		items[slot] = answerItem(answers[j])
	}
	return items
}

// answerItem converts one engine answer into a batch response group.
func answerItem(ans core.Answer) protocol.BatchItem {
	it := protocol.BatchItem{
		Results: make([]protocol.Result, len(ans.Results)),
		Meta:    protocol.ResponseMeta{Degraded: ans.Degraded, Mode: ans.FilterMode, Cache: ans.Cache},
	}
	if ans.Trace != nil {
		it.Meta.TraceID = ans.Trace.ID
		it.Meta.Stages = stageTimings(ans.Trace.Stages)
	}
	for i, r := range ans.Results {
		it.Results[i] = protocol.Result{Key: r.Key, Distance: r.Distance}
	}
	return it
}

// formatMetric renders a telemetry value for a protocol response: integers
// without a decimal point, fractional values in compact float form. The
// integerness test is the explicit math.Trunc idiom guarded to the int64
// range — the previous v == float64(int64(v)) form hit the spec's
// implementation-defined behavior for conversions of out-of-range floats.
func formatMetric(v float64) string {
	if math.Trunc(v) == v && math.Abs(v) < 1<<62 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// queryOptions translates protocol arguments into engine query options,
// resolving the attribute restriction into an ID set.
func (s *Server) queryOptions(req protocol.Request) (core.QueryOptions, error) {
	opt := core.QueryOptions{K: s.DefaultK}
	if v := req.Args["k"]; v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k <= 0 {
			return opt, fmt.Errorf("bad k %q", v)
		}
		opt.K = k
	}
	switch strings.ToLower(req.Args["mode"]) {
	case "", "filtering", "filter":
		opt.Mode = core.Filtering
	case "bruteforce", "original":
		opt.Mode = core.BruteForceOriginal
	case "sketch", "bruteforcesketch":
		opt.Mode = core.BruteForceSketch
	default:
		return opt, fmt.Errorf("unknown mode %q", req.Args["mode"])
	}
	// Per-query time budget: the server's configured budget, optionally
	// tightened (never loosened) by the client.
	opt.Budget = s.QueryBudget
	if v := req.Args["budget"]; v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return opt, fmt.Errorf("bad budget %q", v)
		}
		if s.QueryBudget <= 0 || d < s.QueryBudget {
			opt.Budget = d
		}
	}
	// Attribute restriction: run the attribute search first and restrict
	// the similarity scan to its matches (paper §4.1.2).
	q := attr.Query{Equal: attrArgs(req)}
	if kw := req.Args["keywords"]; kw != "" {
		q.Keywords = strings.Split(kw, ",")
	}
	if len(q.Keywords) > 0 || len(q.Equal) > 0 {
		opt.Restrict = map[object.ID]bool{}
		for _, id := range s.Engine.Attrs().Search(q) {
			opt.Restrict[id] = true
		}
	}
	return opt, nil
}

// reweight scales the query object's segment weights by the comma-separated
// factors in spec (the command-line interface's "adjusted weights for
// feature vectors", §4.1.4). Fewer factors than segments scale a prefix;
// weights are renormalized afterwards.
func reweight(o *object.Object, spec string) error {
	factors := strings.Split(spec, ",")
	if len(factors) > len(o.Segments) {
		return fmt.Errorf("segweights has %d factors for %d segments", len(factors), len(o.Segments))
	}
	for i, f := range factors {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
		if err != nil || v < 0 {
			return fmt.Errorf("bad segment weight factor %q", f)
		}
		o.Segments[i].Weight *= float32(v)
	}
	o.NormalizeWeights()
	if err := o.Validate(); err != nil {
		return fmt.Errorf("adjusted weights produce invalid object: %v", err)
	}
	return nil
}

// attrArgs extracts attr:<name>=<value> arguments.
func attrArgs(req protocol.Request) attr.Attrs {
	var out attr.Attrs
	for k, v := range req.Args {
		if name, ok := strings.CutPrefix(k, "attr:"); ok {
			if out == nil {
				out = attr.Attrs{}
			}
			out[name] = v
		}
	}
	return out
}

// writeAnswer writes one query answer, encoding the text response straight
// from the engine answer into a pooled wire buffer — no intermediate result
// slice, no per-response bufio.Writer — and writing it in one call. For a
// traced request the head-line flags carry the trace ID and the aggregated
// stage breakdown, the response write itself is recorded as a span (visible
// in the retained trace, not in the inline breakdown — it can't time itself
// into the bytes it produces), and the trace is finished, applying
// retention.
func writeAnswer(w io.Writer, ans core.Answer, tr *trace.Active) error {
	est := 64
	for i := range ans.Results {
		est += len(ans.Results[i].Key) + 28
	}
	wb := getWireBuf(est)
	b := append(wb.b, "OK "...)
	b = strconv.AppendInt(b, int64(len(ans.Results)), 10)
	if ans.Degraded {
		b = append(b, " degraded"...)
	}
	if ans.FilterMode != "" {
		b = append(b, " mode="...)
		b = append(b, ans.FilterMode...)
	}
	if tr.Armed() {
		b = append(b, " trace="...)
		b = append(b, tr.ID().String()...)
	}
	if ans.Cache != "" {
		b = append(b, " cache="...)
		b = append(b, ans.Cache...)
	}
	if tr.Armed() {
		if stages := tr.Stages(); len(stages) > 0 {
			b = append(b, " stages="...)
			for i, st := range stages {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, st.Name...)
				b = append(b, ':')
				b = strconv.AppendInt(b, int64(st.Dur), 10)
			}
		}
	}
	b = append(b, '\n')
	for i := range ans.Results {
		b = protocol.AppendMaybeQuote(b, ans.Results[i].Key)
		b = append(b, ' ')
		b = strconv.AppendFloat(b, ans.Results[i].Distance, 'g', -1, 64)
		b = append(b, '\n')
	}
	ws := time.Now()
	_, err := w.Write(b)
	tr.Record("write", ws, time.Since(ws))
	tr.Finish()
	wb.b = b
	putWireBuf(wb)
	return err
}
