package server

import (
	"strings"
	"testing"

	"ferret/internal/protocol"
)

// TestBatchQuery: a BATCHQUERY answer must match the same keys queried one
// at a time, with per-key errors confined to their group.
func TestBatchQuery(t *testing.T) {
	client, _ := startServer(t, nil)
	keys := []string{"c0/m0", "c1/m2", "no-such-key", "c2/m1"}
	items, err := client.BatchQuery(keys, protocol.QueryParams{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(keys) {
		t.Fatalf("%d groups for %d keys", len(items), len(keys))
	}
	for i, key := range keys {
		if key == "no-such-key" {
			if !strings.Contains(items[i].Err, "unknown object key") {
				t.Fatalf("group %d: err %q", i, items[i].Err)
			}
			continue
		}
		if items[i].Err != "" {
			t.Fatalf("group %d: unexpected error %q", i, items[i].Err)
		}
		want, err := client.Query(key, protocol.QueryParams{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(items[i].Results) != len(want) {
			t.Fatalf("group %d: %d vs %d results", i, len(items[i].Results), len(want))
		}
		for r := range want {
			if items[i].Results[r] != want[r] {
				t.Fatalf("group %d rank %d: batch %v serial %v", i, r, items[i].Results[r], want[r])
			}
		}
		if items[i].Results[0].Key != key {
			t.Fatalf("group %d: self %q not first (%+v)", i, key, items[i].Results[0])
		}
	}
}

// TestBatchQueryBadArgs: malformed batch requests fail the whole request.
func TestBatchQueryBadArgs(t *testing.T) {
	client, _ := startServer(t, nil)
	if _, err := client.BatchQuery(nil, protocol.QueryParams{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	// n out of range.
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = "c0/m0"
	}
	if _, err := client.BatchQuery(keys, protocol.QueryParams{}); err == nil {
		t.Fatal("oversized batch accepted")
	}
}
