// AVX-512 ℓ₁ block kernel (see l1_amd64.go). One call processes exactly 64
// elements: eight 8-float chunks are widened to float64 (exact), subtracted,
// made absolute with a sign mask, and accumulated into eight independent
// float64 lanes; the lanes are reduced pairwise at the end. The reduction
// order is fixed, so results are deterministic across runs (they differ from
// the scalar path only in summation order).

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func l1Block64AVX512(a, b *float32) float64
//
// Register plan: SI/DI element pointers, Z0/Z1 widened chunks, Z2 diff,
// Z4 lane accumulators, Z5 abs mask (sign bit cleared).
#define L1CHUNK(off) \
	VCVTPS2PD off(SI), Z0 \
	VCVTPS2PD off(DI), Z1 \
	VSUBPD    Z1, Z0, Z2  \
	VPANDQ    Z5, Z2, Z2  \
	VADDPD    Z2, Z4, Z4

TEXT ·l1Block64AVX512(SB), NOSPLIT, $0-24
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ $0x7FFFFFFFFFFFFFFF, AX
	VPBROADCASTQ AX, Z5
	VPXORQ Z4, Z4, Z4

	L1CHUNK(0)
	L1CHUNK(32)
	L1CHUNK(64)
	L1CHUNK(96)
	L1CHUNK(128)
	L1CHUNK(160)
	L1CHUNK(192)
	L1CHUNK(224)

	// Pairwise lane reduction: 8 → 4 → 2 → 1 float64.
	VEXTRACTF64X4 $1, Z4, Y3
	VADDPD        Y3, Y4, Y4
	VEXTRACTF128  $1, Y4, X3
	VADDPD        X3, X4, X4
	VPERMILPD     $1, X4, X3
	VADDSD        X3, X4, X4
	VMOVSD        X4, ret+16(FP)
	VZEROUPPER
	RET
