package vector

// AVX-512 block kernel for the ℓ₁ distance, the ground distance of every
// default EMD configuration and therefore the rank stage's hottest loop.
// The scalar loop converts, subtracts, and accumulates one element at a
// time with a loop-carried dependency on the float64 sum; the vector kernel
// widens 8 float32 lanes to float64 per step (the conversion is exact, so
// per-element values match the scalar path) and keeps 8 independent
// partial sums, reduced pairwise once per 64-element block. Requires
// AVX-512F and OS support for ZMM state, detected at startup.

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask.
func xgetbv() (eax, edx uint32)

// l1Block64AVX512 returns Σ|aᵢ−bᵢ| over exactly 64 elements, computed in
// float64 with a fixed 8-lane pairwise reduction order.
//
//go:noescape
func l1Block64AVX512(a, b *float32) float64

func init() {
	if detectAVX512F() {
		l1Block64 = l1Block64AVX512
	}
}

func detectAVX512F() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	// XCR0 must enable SSE, AVX, and the three AVX-512 state components
	// (opmask, ZMM hi256, hi16 ZMM) or the kernel will fault on ZMM use.
	lo, _ := xgetbv()
	const zmmState = 0xE6
	if lo&zmmState != zmmState {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx512f = 1 << 16 // EBX
	return b7&avx512f != 0
}
