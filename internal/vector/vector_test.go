package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestL1(t *testing.T) {
	if got := L1([]float32{1, 2, 3}, []float32{4, 0, 3}); got != 5 {
		t.Errorf("L1 = %g, want 5", got)
	}
	if got := L1([]float32{}, []float32{}); got != 0 {
		t.Errorf("L1 of empty = %g, want 0", got)
	}
}

func TestL2(t *testing.T) {
	if got := L2([]float32{0, 0}, []float32{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L2 = %g, want 5", got)
	}
}

func TestLpMatchesL1L2(t *testing.T) {
	a := []float32{1, -2, 3.5, 0}
	b := []float32{-1, 2, 0.5, 4}
	if got, want := Lp(1)(a, b), L1(a, b); !almostEqual(got, want, 1e-9) {
		t.Errorf("Lp(1) = %g, L1 = %g", got, want)
	}
	if got, want := Lp(2)(a, b), L2(a, b); !almostEqual(got, want, 1e-9) {
		t.Errorf("Lp(2) = %g, L2 = %g", got, want)
	}
}

func TestLpRejectsSubOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Lp(0.5) did not panic")
		}
	}()
	Lp(0.5)
}

func TestLInf(t *testing.T) {
	if got := LInf([]float32{1, 5, 2}, []float32{2, 1, 2}); got != 4 {
		t.Errorf("LInf = %g, want 4", got)
	}
}

func TestWeightedL1(t *testing.T) {
	f := WeightedL1([]float32{1, 0, 2})
	if got := f([]float32{1, 1, 1}, []float32{0, 5, 2}); got != 3 {
		t.Errorf("WeightedL1 = %g, want 3", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	L1([]float32{1}, []float32{1, 2})
}

func TestPearson(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	if got := Pearson(a, a); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Pearson(a,a) = %g, want 0", got)
	}
	// Perfect negative correlation → distance 2.
	b := []float32{4, 3, 2, 1}
	if got := Pearson(a, b); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Pearson(a, reversed) = %g, want 2", got)
	}
	// Affine transform preserves correlation.
	c := []float32{3, 5, 7, 9}
	if got := Pearson(a, c); !almostEqual(got, 0, 1e-9) {
		t.Errorf("Pearson(a, 2a+1) = %g, want 0", got)
	}
	// Constant vector: distance 1 by convention.
	if got := Pearson(a, []float32{5, 5, 5, 5}); got != 1 {
		t.Errorf("Pearson(a, const) = %g, want 1", got)
	}
}

func TestSpearman(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	// Any monotone transform has ρ = 1.
	b := []float32{1, 4, 9, 16, 25}
	if got := Spearman(a, b); !almostEqual(got, 0, 1e-9) {
		t.Errorf("Spearman(a, a²) = %g, want 0", got)
	}
	rev := []float32{5, 4, 3, 2, 1}
	if got := Spearman(a, rev); !almostEqual(got, 2, 1e-9) {
		t.Errorf("Spearman(a, rev) = %g, want 2", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float32{10, 20, 20, 30})
	want := []float32{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestCosine(t *testing.T) {
	a := []float32{1, 0}
	if got := Cosine(a, []float32{0, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Cosine(orthogonal) = %g, want 1", got)
	}
	if got := Cosine(a, []float32{5, 0}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Cosine(parallel) = %g, want 0", got)
	}
	if got := Cosine(a, []float32{0, 0}); got != 1 {
		t.Errorf("Cosine(zero) = %g, want 1", got)
	}
}

func TestThresholded(t *testing.T) {
	f := Thresholded(L1, 2.5)
	if got := f([]float32{0}, []float32{1}); got != 1 {
		t.Errorf("below threshold changed: %g", got)
	}
	if got := f([]float32{0}, []float32{10}); got != 2.5 {
		t.Errorf("above threshold = %g, want 2.5", got)
	}
}

// randVecPair yields same-length random vectors for property tests.
func randVecPair(rng *rand.Rand) (a, b, c []float32) {
	n := rng.Intn(16) + 1
	a = make([]float32, n)
	b = make([]float32, n)
	c = make([]float32, n)
	for i := 0; i < n; i++ {
		a[i] = float32(rng.NormFloat64() * 10)
		b[i] = float32(rng.NormFloat64() * 10)
		c[i] = float32(rng.NormFloat64() * 10)
	}
	return
}

// TestMetricAxioms checks non-negativity, symmetry, identity and the
// triangle inequality for the ℓ_p family on random vectors.
func TestMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	funcs := map[string]Func{"L1": L1, "L2": L2, "Lp1.5": Lp(1.5), "LInf": LInf}
	for name, f := range funcs {
		for trial := 0; trial < 300; trial++ {
			a, b, c := randVecPair(rng)
			dab, dba := f(a, b), f(b, a)
			if dab < 0 {
				t.Fatalf("%s: negative distance", name)
			}
			if !almostEqual(dab, dba, 1e-9) {
				t.Fatalf("%s: asymmetric: %g vs %g", name, dab, dba)
			}
			if d := f(a, a); !almostEqual(d, 0, 1e-9) {
				t.Fatalf("%s: d(a,a) = %g", name, d)
			}
			if dac, dcb := f(a, c), f(c, b); dab > dac+dcb+1e-6*(1+dab) {
				t.Fatalf("%s: triangle violated: %g > %g + %g", name, dab, dac, dcb)
			}
		}
	}
}

// TestCorrelationDistanceRange: Pearson and Spearman distances stay in [0, 2].
func TestCorrelationDistanceRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, _ := randVecPair(rng)
		for _, d := range []float64{Pearson(a, b), Spearman(a, b)} {
			if d < 0 || d > 2 || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestL1Capped: the capped kernel must equal min(L1, limit) bit for bit,
// across vector lengths that exercise the blocked early-exit check.
func TestL1Capped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 5, 63, 64, 65, 130, 544} {
		for trial := 0; trial < 50; trial++ {
			a := make([]float32, n)
			b := make([]float32, n)
			for i := range a {
				a[i] = rng.Float32() * 10
				b[i] = rng.Float32() * 10
			}
			full := L1(a, b)
			for _, limit := range []float64{full * 0.01, full * 0.5, full, full * 2, 1e-9} {
				if limit <= 0 {
					continue
				}
				want := full
				if want > limit {
					want = limit
				}
				if got := L1Capped(a, b, limit); got != want {
					t.Fatalf("n=%d limit=%g: got %g want %g (full %g)", n, limit, got, want, full)
				}
			}
		}
	}
}

// TestL1BlockKernel: when a vectorized 64-element block kernel is active it
// must agree with the scalar block to within reassociation-level rounding,
// and L1 itself must match a plain scalar sum to the same tolerance across
// lengths that mix full blocks and tails.
func TestL1BlockKernel(t *testing.T) {
	if l1Block64 == nil {
		t.Skip("no vector kernel on this CPU; scalar path is the reference itself")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := make([]float32, 64)
		b := make([]float32, 64)
		for i := range a {
			a[i] = (rng.Float32() - 0.5) * 20
			b[i] = (rng.Float32() - 0.5) * 20
		}
		got := l1Block64(&a[0], &b[0])
		want := l1Scalar64(a, b)
		if !almostEqual(got, want, 1e-9*math.Max(1, want)) {
			t.Fatalf("trial %d: kernel %g, scalar %g", trial, got, want)
		}
	}
	for _, n := range []int{64, 65, 127, 128, 200, 544} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = rng.Float32() * 10
			b[i] = rng.Float32() * 10
		}
		var scalar float64
		for i := range a {
			scalar += math.Abs(float64(a[i]) - float64(b[i]))
		}
		if got := L1(a, b); !almostEqual(got, scalar, 1e-9*math.Max(1, scalar)) {
			t.Fatalf("n=%d: L1 %g, scalar %g", n, got, scalar)
		}
	}
}

func BenchmarkL1(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float32, 544)
	y := make([]float32, 544)
	for i := range x {
		x[i] = rng.Float32()
		y[i] = rng.Float32()
	}
	b.SetBytes(int64(2 * 4 * len(x)))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += L1(x, y)
	}
	benchSink = sink
}

var benchSink float64
