// Package vector provides the distance functions used as segment distance
// functions in the Ferret toolkit (paper §2, §5): the ℓ_p norms, a weighted
// ℓ₁ distance, and the correlation distances used by the genomic plugin.
//
// All functions take []float32 feature vectors (the toolkit's native
// representation) and compute in float64 for accuracy. Vectors passed to any
// distance must have equal length; mismatched lengths panic, since that is a
// programming error in a plug-in, not a data error.
package vector

import (
	"math"
	"sort"
)

// Func is the segment distance function type: the distance between two
// feature vectors in D-dimensional space (the paper's seg_distance).
type Func func(a, b []float32) float64

func checkLen(a, b []float32) {
	if len(a) != len(b) {
		panic("vector: dimension mismatch")
	}
}

// l1Block64 is an optional vectorized kernel computing Σ|aᵢ−bᵢ| over
// exactly 64 elements in float64, set at startup on CPUs with AVX-512
// (see l1_amd64.go). Both L1 and L1Capped route whole blocks through the
// same kernel, so the two stay bit-identical to each other regardless of
// which path is active; the kernel's lane-parallel reduction order differs
// from the scalar sum, so absolute results may differ from the scalar
// build by ordinary float64 rounding.
var l1Block64 func(a, b *float32) float64

// l1Scalar64 is the scalar 64-element block used when no vector kernel is
// available; its accumulation order matches the plain element loop.
func l1Scalar64(a, b []float32) float64 {
	a = a[:64]
	b = b[:64]
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// L1 returns the ℓ₁ (Manhattan) distance Σ|aᵢ−bᵢ|.
func L1(a, b []float32) float64 {
	checkLen(a, b)
	var s float64
	i := 0
	for ; i+64 <= len(a); i += 64 {
		if l1Block64 != nil {
			s += l1Block64(&a[i], &b[i])
		} else {
			s += l1Scalar64(a[i:], b[i:])
		}
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// L1Capped returns min(L1(a, b), limit), abandoning the sum as soon as it
// reaches limit. Because the partial sums are nondecreasing and accumulate in
// the same order as L1 (both sum 64-dimension blocks through the same kernel),
// the result is bit-identical to capping the full L1 afterwards — an early
// exit never changes the answer, only skips work. The check runs once per
// block so the fully-summed case stays at L1 speed. limit must be positive.
func L1Capped(a, b []float32, limit float64) float64 {
	checkLen(a, b)
	var s float64
	i := 0
	for ; i+64 <= len(a); i += 64 {
		if l1Block64 != nil {
			s += l1Block64(&a[i], &b[i])
		} else {
			s += l1Scalar64(a[i:], b[i:])
		}
		if s >= limit {
			return limit
		}
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	if s > limit {
		return limit
	}
	return s
}

// L2 returns the ℓ₂ (Euclidean) distance sqrt(Σ(aᵢ−bᵢ)²).
func L2(a, b []float32) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

// Lp returns the ℓ_p distance (Σ|aᵢ−bᵢ|^p)^(1/p) for p ≥ 1.
func Lp(p float64) Func {
	if p < 1 {
		panic("vector: Lp requires p >= 1")
	}
	return func(a, b []float32) float64 {
		checkLen(a, b)
		var s float64
		for i := range a {
			d := math.Abs(float64(a[i]) - float64(b[i]))
			s += math.Pow(d, p)
		}
		return math.Pow(s, 1/p)
	}
}

// LInf returns the ℓ∞ (Chebyshev) distance max|aᵢ−bᵢ|.
func LInf(a, b []float32) float64 {
	checkLen(a, b)
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// WeightedL1 returns a weighted ℓ₁ distance Σ wᵢ·|aᵢ−bᵢ|, the segment
// distance used by the image search system (paper §5.1). The weight slice
// length must match the vectors.
func WeightedL1(w []float32) Func {
	return func(a, b []float32) float64 {
		checkLen(a, b)
		if len(w) != len(a) {
			panic("vector: weight dimension mismatch")
		}
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			if d < 0 {
				d = -d
			}
			s += float64(w[i]) * d
		}
		return s
	}
}

// Pearson returns the Pearson correlation distance 1 − r(a, b), where r is
// the sample Pearson correlation coefficient. Constant vectors (zero
// variance) are treated as uncorrelated with everything: distance 1.
// Used by the genomic plugin (paper §5.4).
func Pearson(a, b []float32) float64 {
	checkLen(a, b)
	if len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += float64(a[i])
		sb += float64(b[i])
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da := float64(a[i]) - ma
		db := float64(b[i]) - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	// A constant vector accumulates exact-zero squared deviations, so the
	// zero-variance guard is an exact comparison by construction.
	//lint:ignore floatcmp exact zero is the only value a constant vector's variance sum can take
	if va == 0 || vb == 0 {
		return 1
	}
	r := cov / math.Sqrt(va*vb)
	// Clamp against rounding drift so the distance stays in [0, 2].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return 1 - r
}

// Spearman returns the Spearman rank correlation distance 1 − ρ(a, b):
// Pearson correlation computed on the ranks of the values, with average
// ranks for ties. Used by the genomic plugin (paper §5.4).
func Spearman(a, b []float32) float64 {
	checkLen(a, b)
	ra := ranks(a)
	rb := ranks(b)
	return Pearson(ra, rb)
}

// ranks returns the fractional ranks of v (1-based, ties averaged).
func ranks(v []float32) []float32 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	r := make([]float32, n)
	for i := 0; i < n; {
		j := i
		// Tie groups are defined by bit-identical input values: ranking
		// must give equal inputs equal ranks, so this is exact on purpose.
		//lint:ignore floatcmp rank ties are bit-identical input values, not computed results
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float32(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Cosine returns the cosine distance 1 − (a·b)/(‖a‖‖b‖). Zero vectors have
// distance 1 from everything.
func Cosine(a, b []float32) float64 {
	checkLen(a, b)
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	// Exact zero norm means the all-zero vector (sums of squares), the one
	// input cosine distance is undefined for; no epsilon wanted here.
	//lint:ignore floatcmp exact zero is the only value a zero vector's norm sum can take
	if na == 0 || nb == 0 {
		return 1
	}
	c := dot / math.Sqrt(na*nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// Thresholded wraps a distance function, capping its value at t. Paper §5.1
// thresholds segment distances before the EMD computation to reduce the
// impact of outlier segments.
func Thresholded(f Func, t float64) Func {
	return func(a, b []float32) float64 {
		d := f(a, b)
		if d > t {
			return t
		}
		return d
	}
}
