// Package dsp provides the signal-processing substrate for the audio
// plugin (paper §5.2): FFT, windowing, mel filterbanks, DCT and MFCC
// extraction. It replaces the Marsyas library the paper used for feature
// extraction.
package dsp

import (
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two.
func FFT(x []complex128) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic("dsp: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplxExp(step * float64(k))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

func cmplxExp(theta float64) complex128 {
	s, c := math.Sincos(theta)
	return complex(c, s)
}

// PowerSpectrum returns |X_k|² for k = 0..n/2 of the FFT of the real signal
// frame (len must be a power of two).
func PowerSpectrum(frame []float64) []float64 {
	n := len(frame)
	buf := make([]complex128, n)
	for i, v := range frame {
		buf[i] = complex(v, 0)
	}
	FFT(buf)
	out := make([]float64, n/2+1)
	for k := range out {
		re, im := real(buf[k]), imag(buf[k])
		out[k] = re*re + im*im
	}
	return out
}

// HammingWindow returns the n-point Hamming window.
func HammingWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// hzToMel converts a frequency to the mel scale (HTK formula).
func hzToMel(hz float64) float64 { return 2595 * math.Log10(1+hz/700) }

// melToHz is the inverse of hzToMel.
func melToHz(mel float64) float64 { return 700 * (math.Pow(10, mel/2595) - 1) }

// MelBank is a triangular mel filterbank over an FFT power spectrum.
type MelBank struct {
	filters [][]float64 // filters[f][k]: weight of spectrum bin k in filter f
}

// NewMelBank builds numFilters triangular filters spanning [lowHz, highHz]
// for frames of fftSize samples at the given sample rate.
func NewMelBank(numFilters, fftSize, sampleRate int, lowHz, highHz float64) *MelBank {
	if highHz <= 0 || highHz > float64(sampleRate)/2 {
		highHz = float64(sampleRate) / 2
	}
	nBins := fftSize/2 + 1
	lowMel, highMel := hzToMel(lowHz), hzToMel(highHz)
	// numFilters+2 equally spaced mel points define the triangle corners.
	points := make([]int, numFilters+2)
	for i := range points {
		mel := lowMel + (highMel-lowMel)*float64(i)/float64(numFilters+1)
		hz := melToHz(mel)
		bin := int(math.Floor(float64(fftSize+1) * hz / float64(sampleRate)))
		if bin > nBins-1 {
			bin = nBins - 1
		}
		points[i] = bin
	}
	mb := &MelBank{filters: make([][]float64, numFilters)}
	for f := 0; f < numFilters; f++ {
		filt := make([]float64, nBins)
		left, center, right := points[f], points[f+1], points[f+2]
		for k := left; k < center; k++ {
			if center > left {
				filt[k] = float64(k-left) / float64(center-left)
			}
		}
		for k := center; k <= right && k < nBins; k++ {
			if right > center {
				filt[k] = float64(right-k) / float64(right-center)
			} else if k == center {
				filt[k] = 1
			}
		}
		mb.filters[f] = filt
	}
	return mb
}

// Apply returns the log filterbank energies of a power spectrum.
func (mb *MelBank) Apply(power []float64) []float64 {
	out := make([]float64, len(mb.filters))
	for f, filt := range mb.filters {
		var e float64
		n := len(power)
		if len(filt) < n {
			n = len(filt)
		}
		for k := 0; k < n; k++ {
			e += filt[k] * power[k]
		}
		// Floor keeps log finite for silent frames.
		if e < 1e-12 {
			e = 1e-12
		}
		out[f] = math.Log(e)
	}
	return out
}

// DCT2 returns the orthonormal DCT-II of x.
func DCT2(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		var s float64
		for i := 0; i < n; i++ {
			s += x[i] * math.Cos(math.Pi*float64(k)*(float64(i)+0.5)/float64(n))
		}
		scale := math.Sqrt(2 / float64(n))
		if k == 0 {
			scale = math.Sqrt(1 / float64(n))
		}
		out[k] = s * scale
	}
	return out
}

// MFCCExtractor computes mel-frequency cepstral coefficients for
// fixed-size frames.
type MFCCExtractor struct {
	frameSize int
	numCoeffs int
	window    []float64
	bank      *MelBank
	numMel    int
}

// NewMFCCExtractor builds an extractor yielding numCoeffs coefficients per
// frame of frameSize samples (a power of two) at the given sample rate.
func NewMFCCExtractor(frameSize, sampleRate, numCoeffs int) *MFCCExtractor {
	const numMel = 26
	return &MFCCExtractor{
		frameSize: frameSize,
		numCoeffs: numCoeffs,
		window:    HammingWindow(frameSize),
		bank:      NewMelBank(numMel, frameSize, sampleRate, 0, 0),
		numMel:    numMel,
	}
}

// FrameSize returns the number of samples per frame.
func (m *MFCCExtractor) FrameSize() int { return m.frameSize }

// Coeffs computes the first numCoeffs MFCCs of one frame. Frames shorter
// than FrameSize are zero-padded.
func (m *MFCCExtractor) Coeffs(frame []float64) []float64 {
	buf := make([]float64, m.frameSize)
	n := copy(buf, frame)
	_ = n
	for i := range buf {
		buf[i] *= m.window[i]
	}
	power := PowerSpectrum(buf)
	logMel := m.bank.Apply(power)
	ceps := DCT2(logMel)
	out := make([]float64, m.numCoeffs)
	copy(out, ceps[:min(m.numCoeffs, len(ceps))])
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RMS returns the root-mean-square energy of a window of samples.
func RMS(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range samples {
		s += v * v
	}
	return math.Sqrt(s / float64(len(samples)))
}

// ZeroCrossings counts sign changes in a window of samples.
func ZeroCrossings(samples []float64) int {
	n := 0
	for i := 1; i < len(samples); i++ {
		if (samples[i-1] >= 0) != (samples[i] >= 0) {
			n++
		}
	}
	return n
}
