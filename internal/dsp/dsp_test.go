package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", k, v)
		}
	}
}

func TestFFTSinusoid(t *testing.T) {
	// A pure sinusoid at bin 5 concentrates energy there.
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(2*math.Pi*5*float64(i)/n), 0)
	}
	FFT(x)
	for k := 0; k <= n/2; k++ {
		mag := cmplx.Abs(x[k])
		if k == 5 {
			if math.Abs(mag-n/2) > 1e-9 {
				t.Fatalf("bin 5 magnitude %g, want %g", mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("bin %d magnitude %g, want 0", k, mag)
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 32
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			angle := -2 * math.Pi * float64(k) * float64(i) / n
			want[k] += x[i] * cmplx.Exp(complex(0, angle))
		}
	}
	FFT(x)
	for k := 0; k < n; k++ {
		if cmplx.Abs(x[k]-want[k]) > 1e-9 {
			t.Fatalf("bin %d: FFT %v, DFT %v", k, x[k], want[k])
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestPowerSpectrumParseval(t *testing.T) {
	// Parseval: Σ|x|² = (1/N)Σ|X|². PowerSpectrum returns only k ≤ N/2, so
	// reconstruct the full sum using conjugate symmetry for real input.
	rng := rand.New(rand.NewSource(2))
	const n = 128
	frame := make([]float64, n)
	var timeEnergy float64
	for i := range frame {
		frame[i] = rng.NormFloat64()
		timeEnergy += frame[i] * frame[i]
	}
	ps := PowerSpectrum(frame)
	freqEnergy := ps[0] + ps[n/2]
	for k := 1; k < n/2; k++ {
		freqEnergy += 2 * ps[k]
	}
	freqEnergy /= n
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: time %g freq %g", timeEnergy, freqEnergy)
	}
}

func TestHammingWindow(t *testing.T) {
	w := HammingWindow(64)
	if math.Abs(w[0]-0.08) > 1e-9 || math.Abs(w[63]-0.08) > 1e-9 {
		t.Fatalf("endpoints %g %g, want 0.08", w[0], w[63])
	}
	// Symmetric, peak in the middle.
	for i := 0; i < 32; i++ {
		if math.Abs(w[i]-w[63-i]) > 1e-12 {
			t.Fatal("window asymmetric")
		}
	}
	if w[31] < 0.99 {
		t.Fatalf("mid value %g", w[31])
	}
	if HammingWindow(1)[0] != 1 {
		t.Fatal("single-point window != 1")
	}
}

func TestMelScaleRoundTrip(t *testing.T) {
	for _, hz := range []float64{0, 100, 1000, 4000, 8000} {
		if got := melToHz(hzToMel(hz)); math.Abs(got-hz) > 1e-6*(1+hz) {
			t.Fatalf("round trip %g → %g", hz, got)
		}
	}
	// Mel scale is monotone.
	if hzToMel(1000) >= hzToMel(2000) {
		t.Fatal("mel not monotone")
	}
}

func TestMelBankRespondsToFrequency(t *testing.T) {
	const fftSize, rate = 512, 16000
	mb := NewMelBank(26, fftSize, rate, 0, 0)
	tone := func(hz float64) []float64 {
		frame := make([]float64, fftSize)
		for i := range frame {
			frame[i] = math.Sin(2 * math.Pi * hz * float64(i) / rate)
		}
		return mb.Apply(PowerSpectrum(frame))
	}
	low := tone(300)
	high := tone(4000)
	// The peak filter index must move up with frequency.
	argmax := func(v []float64) int {
		best := 0
		for i, x := range v {
			if x > v[best] {
				best = i
			}
		}
		return best
	}
	if argmax(low) >= argmax(high) {
		t.Fatalf("mel peak did not move: low %d high %d", argmax(low), argmax(high))
	}
}

func TestMelBankSilence(t *testing.T) {
	mb := NewMelBank(26, 512, 16000, 0, 0)
	out := mb.Apply(make([]float64, 257))
	for _, v := range out {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatal("non-finite energy for silence")
		}
	}
}

func TestDCT2Orthonormal(t *testing.T) {
	// DCT-II of a constant vector concentrates in coefficient 0 with norm
	// preservation.
	x := []float64{1, 1, 1, 1}
	y := DCT2(x)
	if math.Abs(y[0]-2) > 1e-12 { // sqrt(1/4)·4 = 2
		t.Fatalf("DC coefficient %g, want 2", y[0])
	}
	for k := 1; k < 4; k++ {
		if math.Abs(y[k]) > 1e-12 {
			t.Fatalf("coefficient %d = %g, want 0", k, y[k])
		}
	}
	// Energy preservation for random input (orthonormal transform).
	rng := rand.New(rand.NewSource(3))
	v := make([]float64, 16)
	var ein float64
	for i := range v {
		v[i] = rng.NormFloat64()
		ein += v[i] * v[i]
	}
	w := DCT2(v)
	var eout float64
	for _, c := range w {
		eout += c * c
	}
	if math.Abs(ein-eout) > 1e-9*ein {
		t.Fatalf("energy %g → %g", ein, eout)
	}
}

func TestMFCCDistinguishesTones(t *testing.T) {
	ex := NewMFCCExtractor(512, 16000, 6)
	tone := func(hz float64) []float64 {
		frame := make([]float64, 512)
		for i := range frame {
			frame[i] = math.Sin(2 * math.Pi * hz * float64(i) / 16000)
		}
		return frame
	}
	a := ex.Coeffs(tone(400))
	a2 := ex.Coeffs(tone(400))
	b := ex.Coeffs(tone(3000))
	var same, diff float64
	for i := range a {
		same += math.Abs(a[i] - a2[i])
		diff += math.Abs(a[i] - b[i])
	}
	if same > 1e-9 {
		t.Fatalf("identical tones differ: %g", same)
	}
	if diff < 1 {
		t.Fatalf("different tones too close: %g", diff)
	}
	if len(a) != 6 {
		t.Fatalf("got %d coefficients", len(a))
	}
}

func TestMFCCShortFrameZeroPadded(t *testing.T) {
	ex := NewMFCCExtractor(512, 16000, 6)
	out := ex.Coeffs([]float64{0.5, -0.5})
	for _, c := range out {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatal("non-finite MFCC for short frame")
		}
	}
}

func TestRMSAndZeroCrossings(t *testing.T) {
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil) != 0")
	}
	if got := RMS([]float64{3, 4, 0, 0}); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("RMS = %g, want 2.5", got)
	}
	if got := ZeroCrossings([]float64{1, -1, 1, -1}); got != 3 {
		t.Fatalf("ZeroCrossings = %d, want 3", got)
	}
	if got := ZeroCrossings([]float64{1, 2, 3}); got != 0 {
		t.Fatalf("ZeroCrossings = %d, want 0", got)
	}
}

func BenchmarkFFT512(b *testing.B) {
	x := make([]complex128, 512)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	buf := make([]complex128, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		FFT(buf)
	}
}

func BenchmarkMFCCFrame(b *testing.B) {
	ex := NewMFCCExtractor(512, 16000, 6)
	frame := make([]float64, 512)
	for i := range frame {
		frame[i] = math.Sin(float64(i) * 0.1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex.Coeffs(frame)
	}
}
