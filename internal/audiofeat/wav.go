package audiofeat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Minimal RIFF/WAVE support for mono 16-bit PCM — enough to move synthetic
// speech between the data-acquisition directory and the audio plug-in.

// WriteWAV encodes samples (in [-1, 1]) as mono 16-bit PCM at the given
// sample rate.
func WriteWAV(w io.Writer, samples []float64, sampleRate int) error {
	dataLen := len(samples) * 2
	var hdr [44]byte
	le := binary.LittleEndian
	copy(hdr[0:], "RIFF")
	le.PutUint32(hdr[4:], uint32(36+dataLen))
	copy(hdr[8:], "WAVE")
	copy(hdr[12:], "fmt ")
	le.PutUint32(hdr[16:], 16)
	le.PutUint16(hdr[20:], 1) // PCM
	le.PutUint16(hdr[22:], 1) // mono
	le.PutUint32(hdr[24:], uint32(sampleRate))
	le.PutUint32(hdr[28:], uint32(sampleRate*2))
	le.PutUint16(hdr[32:], 2)
	le.PutUint16(hdr[34:], 16)
	copy(hdr[36:], "data")
	le.PutUint32(hdr[40:], uint32(dataLen))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, dataLen)
	for i, s := range samples {
		v := int16(math.Max(-1, math.Min(1, s)) * 32767)
		le.PutUint16(buf[i*2:], uint16(v))
	}
	_, err := w.Write(buf)
	return err
}

// ReadWAV decodes a mono 16-bit PCM WAV file, returning the samples in
// [-1, 1] and the sample rate.
func ReadWAV(r io.Reader) ([]float64, int, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	if string(hdr[0:4]) != "RIFF" || string(hdr[8:12]) != "WAVE" {
		return nil, 0, errors.New("audiofeat: not a RIFF/WAVE file")
	}
	le := binary.LittleEndian
	sampleRate := 0
	channels := 0
	bits := 0
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			return nil, 0, fmt.Errorf("audiofeat: reading chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := int(le.Uint32(chunk[4:]))
		if size > 1<<28 {
			return nil, 0, fmt.Errorf("audiofeat: implausible %s chunk of %d bytes", id, size)
		}
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, err
			}
			if len(body) < 16 {
				return nil, 0, errors.New("audiofeat: short fmt chunk")
			}
			if format := le.Uint16(body[0:]); format != 1 {
				return nil, 0, fmt.Errorf("audiofeat: unsupported WAV format %d (want PCM)", format)
			}
			channels = int(le.Uint16(body[2:]))
			sampleRate = int(le.Uint32(body[4:]))
			bits = int(le.Uint16(body[14:]))
		case "data":
			if sampleRate == 0 {
				return nil, 0, errors.New("audiofeat: data chunk before fmt chunk")
			}
			if channels != 1 || bits != 16 {
				return nil, 0, fmt.Errorf("audiofeat: unsupported WAV layout (%d ch, %d bit)", channels, bits)
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, 0, err
			}
			samples := make([]float64, size/2)
			for i := range samples {
				samples[i] = float64(int16(le.Uint16(body[i*2:]))) / 32767
			}
			return samples, sampleRate, nil
		default:
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, 0, err
			}
		}
	}
}

// ReadWAVFile loads a WAV file from disk.
func ReadWAVFile(path string) ([]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadWAV(f)
}

// WriteWAVFile saves samples to a WAV file.
func WriteWAVFile(path string, samples []float64, sampleRate int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteWAV(f, samples, sampleRate); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
