// Package audiofeat is the audio plug-in for the Ferret toolkit (paper
// §5.2): utterance-level segmentation of speech signals by pause detection,
// word-level sub-segmentation, and MFCC feature extraction.
//
// Segmentation follows the paper: the signal is examined over 20 ms
// windows, computing RMS energy and zero crossings; ten or more consecutive
// low-energy windows mark an utterance boundary unless the zero-crossing
// count is high (unvoiced consonants). Each word segment is then described
// by a 192-dimensional feature vector: a 512-sample sliding window with
// variable stride yields 32 windows per segment, and the first 6 MFCC
// parameters of each window are concatenated (6 × 32 = 192). Segment
// weights are proportional to segment length.
package audiofeat

import (
	"errors"

	"ferret/internal/dsp"
	"ferret/internal/object"
)

// FeatureDim is the dimensionality of a word-segment feature vector.
const FeatureDim = NumWindows * NumMFCC

// Parameters of the paper's audio pipeline.
const (
	NumWindows = 32  // sliding windows per word segment
	NumMFCC    = 6   // MFCC parameters per window
	WindowSize = 512 // samples per sliding window
)

// Segmenter detects utterance and word boundaries in a speech signal.
type Segmenter struct {
	// SampleRate of the input signal (Hz). Default 16000 (TIMIT's rate).
	SampleRate int
	// SilenceRMS is the energy threshold below which a 20 ms window counts
	// as silence. Default 0.01.
	SilenceRMS float64
	// MinSilentWindows is the run of silent windows marking an utterance
	// boundary. Default 10 (the paper's value: 200 ms).
	MinSilentWindows int
	// MaxZeroCrossings disqualifies a low-energy window as silence when
	// its zero-crossing count is at or above it (unvoiced consonants).
	// Default 60.
	MaxZeroCrossings int
	// MinWordGapWindows is the run of silent windows splitting words
	// inside an utterance. Default 2 (40 ms).
	MinWordGapWindows int
}

func (s Segmenter) withDefaults() Segmenter {
	if s.SampleRate <= 0 {
		s.SampleRate = 16000
	}
	if s.SilenceRMS <= 0 {
		s.SilenceRMS = 0.01
	}
	if s.MinSilentWindows <= 0 {
		s.MinSilentWindows = 10
	}
	if s.MaxZeroCrossings <= 0 {
		s.MaxZeroCrossings = 60
	}
	if s.MinWordGapWindows <= 0 {
		s.MinWordGapWindows = 2
	}
	return s
}

// Span is a half-open sample range [Start, End).
type Span struct{ Start, End int }

func (sp Span) len() int { return sp.End - sp.Start }

// Utterances splits a signal into utterance-level data objects at pauses of
// MinSilentWindows or more silent 20 ms windows.
func (s Segmenter) Utterances(samples []float64) []Span {
	return s.split(samples, s.withDefaults().MinSilentWindows)
}

// Words splits one utterance into word-level segments at shorter pauses.
func (s Segmenter) Words(samples []float64) []Span {
	return s.split(samples, s.withDefaults().MinWordGapWindows)
}

// split partitions samples into voiced spans separated by at least minRun
// consecutive silent windows.
func (s Segmenter) split(samples []float64, minRun int) []Span {
	p := s.withDefaults()
	win := p.SampleRate / 50 // 20 ms
	if win <= 0 {
		win = 320
	}
	numWin := (len(samples) + win - 1) / win
	silent := make([]bool, numWin)
	for w := 0; w < numWin; w++ {
		lo, hi := w*win, (w+1)*win
		if hi > len(samples) {
			hi = len(samples)
		}
		frame := samples[lo:hi]
		// A window is silence when energy is low and there are not many
		// zero crossings (which would indicate an unvoiced consonant).
		// The zero-crossing exception only applies to windows with
		// non-negligible energy: an unvoiced consonant is quiet but not
		// silent, whereas the noise floor crosses zero constantly.
		rms := dsp.RMS(frame)
		lowEnergy := rms < p.SilenceRMS
		consonant := dsp.ZeroCrossings(frame) >= p.MaxZeroCrossings && rms >= p.SilenceRMS*0.25
		silent[w] = lowEnergy && !consonant
	}
	var spans []Span
	inVoice := false
	voiceStart := 0
	run := 0
	for w := 0; w < numWin; w++ {
		if silent[w] {
			run++
			if inVoice && run >= minRun {
				end := (w - run + 1) * win
				if end > voiceStart {
					spans = append(spans, Span{voiceStart, end})
				}
				inVoice = false
			}
			continue
		}
		if !inVoice {
			inVoice = true
			voiceStart = w * win
		}
		run = 0
	}
	if inVoice {
		end := len(samples)
		// Trim the trailing silent run, if any.
		if run > 0 {
			end = (numWin - run) * win
		}
		if end > voiceStart {
			spans = append(spans, Span{voiceStart, end})
		}
	}
	return spans
}

// Extractor converts utterance waveforms into Ferret objects: one segment
// per word with a 192-d MFCC feature vector and a length-proportional
// weight.
type Extractor struct {
	seg  Segmenter
	mfcc *dsp.MFCCExtractor
}

// NewExtractor builds an audio extractor for the given segmenter settings.
func NewExtractor(seg Segmenter) *Extractor {
	seg = seg.withDefaults()
	return &Extractor{
		seg:  seg,
		mfcc: dsp.NewMFCCExtractor(WindowSize, seg.SampleRate, NumMFCC),
	}
}

// WordFeature computes the 192-d feature vector of one word segment: 32
// sliding windows of 512 samples with stride chosen to cover the segment,
// 6 MFCCs each.
func (e *Extractor) WordFeature(word []float64) []float32 {
	vec := make([]float32, 0, FeatureDim)
	stride := 1
	if len(word) > WindowSize {
		stride = (len(word) - WindowSize) / (NumWindows - 1)
		if stride < 1 {
			stride = 1
		}
	}
	for w := 0; w < NumWindows; w++ {
		start := w * stride
		if start > len(word) {
			start = len(word)
		}
		end := start + WindowSize
		if end > len(word) {
			end = len(word)
		}
		coeffs := e.mfcc.Coeffs(word[start:end])
		for _, c := range coeffs {
			vec = append(vec, float32(c))
		}
	}
	return vec
}

// Extract converts one utterance into a Ferret object: word segments with
// MFCC features, weights proportional to word length (paper §5.2).
func (e *Extractor) Extract(key string, utterance []float64) (object.Object, error) {
	words := e.seg.Words(utterance)
	if len(words) == 0 {
		return object.Object{}, errors.New("audiofeat: no voiced segments in utterance")
	}
	weights := make([]float32, len(words))
	vecs := make([][]float32, len(words))
	for i, w := range words {
		weights[i] = float32(w.len())
		vecs[i] = e.WordFeature(utterance[w.Start:w.End])
	}
	return object.New(key, weights, vecs)
}

// FeatureBounds returns conservative [min, max] bounds per dimension for
// sketch construction over MFCC features. MFCCs of normalized signals stay
// well within ±magnitude; values outside are clamped by the sketch unit.
func FeatureBounds(magnitude float32) (min, max []float32) {
	min = make([]float32, FeatureDim)
	max = make([]float32, FeatureDim)
	for i := range min {
		min[i] = -magnitude
		max[i] = magnitude
	}
	return min, max
}

// DefaultFeatureBounds returns per-coefficient bounds matched to the MFCC
// pipeline on normalized (±1 full-scale) speech: the energy coefficient c₀
// of voiced word windows sits around [-25, 5] and the higher cepstral
// coefficients within ±15. Tight bounds matter for sketch quality — the
// random thresholds of Algorithm 1 are drawn inside them, so empty range
// wastes sketch bits. Out-of-range values are still handled (the
// comparison bits simply saturate).
func DefaultFeatureBounds() (min, max []float32) {
	min = make([]float32, FeatureDim)
	max = make([]float32, FeatureDim)
	for i := range min {
		if i%NumMFCC == 0 { // c0 of each window
			min[i], max[i] = -25, 5
		} else {
			min[i], max[i] = -15, 15
		}
	}
	return min, max
}
