package audiofeat

import (
	"math"
	"math/rand"
	"testing"
)

const rate = 16000

// tone renders a sinusoid of the given duration.
func tone(hz float64, seconds float64) []float64 {
	n := int(seconds * rate)
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.3 * math.Sin(2*math.Pi*hz*float64(i)/rate)
	}
	return out
}

// silence renders near-silence (tiny noise floor).
func silence(seconds float64, rng *rand.Rand) []float64 {
	n := int(seconds * rate)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 0.001
	}
	return out
}

func concat(parts ...[]float64) []float64 {
	var out []float64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

func TestUtteranceSegmentation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Two utterances separated by a 300 ms pause (≥ 10 silent 20 ms
	// windows), each utterance 400 ms of voiced signal.
	signal := concat(
		tone(440, 0.4),
		silence(0.3, rng),
		tone(880, 0.4),
	)
	seg := Segmenter{SampleRate: rate}
	utts := seg.Utterances(signal)
	if len(utts) != 2 {
		t.Fatalf("found %d utterances, want 2", len(utts))
	}
	// Spans must be roughly 400 ms each.
	for i, u := range utts {
		dur := float64(u.End-u.Start) / rate
		if dur < 0.3 || dur > 0.5 {
			t.Errorf("utterance %d duration %.3fs", i, dur)
		}
	}
}

func TestShortPauseDoesNotSplitUtterance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// A 100 ms pause (5 windows) is below the 10-window threshold.
	signal := concat(tone(440, 0.3), silence(0.1, rng), tone(660, 0.3))
	seg := Segmenter{SampleRate: rate}
	if utts := seg.Utterances(signal); len(utts) != 1 {
		t.Fatalf("found %d utterances, want 1", len(utts))
	}
	// But Words (2-window gaps) splits there.
	if words := seg.Words(signal); len(words) != 2 {
		t.Fatalf("found %d words, want 2", len(words))
	}
}

func TestSilenceOnlySignal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seg := Segmenter{SampleRate: rate}
	if utts := seg.Utterances(silence(1.0, rng)); len(utts) != 0 {
		t.Fatalf("silence produced %d utterances", len(utts))
	}
}

func TestEmptySignal(t *testing.T) {
	seg := Segmenter{SampleRate: rate}
	if utts := seg.Utterances(nil); len(utts) != 0 {
		t.Fatalf("empty signal produced %d utterances", len(utts))
	}
}

func TestWordFeatureDimension(t *testing.T) {
	e := NewExtractor(Segmenter{SampleRate: rate})
	v := e.WordFeature(tone(500, 0.2))
	if len(v) != FeatureDim {
		t.Fatalf("feature dim %d, want %d", len(v), FeatureDim)
	}
	for _, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatal("non-finite feature value")
		}
	}
	// A very short word still produces a full-size vector.
	short := e.WordFeature(tone(500, 0.01))
	if len(short) != FeatureDim {
		t.Fatalf("short word dim %d", len(short))
	}
}

func TestExtractBuildsWeightedObject(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Three words: 200 ms, 200 ms, 400 ms → last weight ≈ 2× the others.
	utterance := concat(
		tone(400, 0.2), silence(0.06, rng),
		tone(800, 0.2), silence(0.06, rng),
		tone(1200, 0.4),
	)
	e := NewExtractor(Segmenter{SampleRate: rate})
	o, err := e.Extract("utt", utterance)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Segments) != 3 {
		t.Fatalf("got %d word segments, want 3", len(o.Segments))
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	w := o.Segments
	ratio := float64(w[2].Weight) / float64(w[0].Weight)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("long word weight ratio %.2f, want ≈2", ratio)
	}
}

func TestExtractErrorsOnSilence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewExtractor(Segmenter{SampleRate: rate})
	if _, err := e.Extract("s", silence(0.5, rng)); err == nil {
		t.Fatal("silence extracted successfully")
	}
}

// TestSameWordsDifferentSpeakerStayClose: the property the audio search
// system relies on — MFCC features of the same word at slightly shifted
// pitch stay closer than features of a different word.
func TestSameWordsDifferentSpeakerStayClose(t *testing.T) {
	e := NewExtractor(Segmenter{SampleRate: rate})
	mix := func(f1, f2 float64, dur float64) []float64 {
		n := int(dur * rate)
		out := make([]float64, n)
		for i := range out {
			tt := float64(i) / rate
			out[i] = 0.25*math.Sin(2*math.Pi*f1*tt) + 0.15*math.Sin(2*math.Pi*f2*tt)
		}
		return out
	}
	wordA := e.WordFeature(mix(400, 1400, 0.2))
	wordA2 := e.WordFeature(mix(420, 1470, 0.2)) // same word, +5% formants
	wordB := e.WordFeature(mix(700, 2600, 0.2))  // different word
	l1 := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			s += math.Abs(float64(a[i]) - float64(b[i]))
		}
		return s
	}
	if dSame, dDiff := l1(wordA, wordA2), l1(wordA, wordB); dSame >= dDiff {
		t.Errorf("same word dist %.1f >= different word dist %.1f", dSame, dDiff)
	}
}

func TestFeatureBounds(t *testing.T) {
	min, max := FeatureBounds(25)
	if len(min) != FeatureDim || len(max) != FeatureDim {
		t.Fatal("bounds dimension wrong")
	}
	if min[0] != -25 || max[0] != 25 {
		t.Fatalf("bounds = [%g, %g]", min[0], max[0])
	}
}
