package audiofeat

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestWAVRoundTrip(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = 0.5 * math.Sin(float64(i)*0.05)
	}
	var buf bytes.Buffer
	if err := WriteWAV(&buf, samples, 16000); err != nil {
		t.Fatal(err)
	}
	got, rate, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 16000 || len(got) != len(samples) {
		t.Fatalf("rate %d, %d samples", rate, len(got))
	}
	for i := range samples {
		if math.Abs(got[i]-samples[i]) > 1.0/32000 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], samples[i])
		}
	}
}

func TestWAVClipsOutOfRange(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWAV(&buf, []float64{2.0, -2.0}, 8000); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] < 0.99 || got[1] > -0.99 {
		t.Fatalf("clipping failed: %v", got)
	}
}

func TestWAVFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wav")
	samples := []float64{0, 0.25, -0.25, 0.5}
	if err := WriteWAVFile(path, samples, 44100); err != nil {
		t.Fatal(err)
	}
	got, rate, err := ReadWAVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 44100 || len(got) != 4 {
		t.Fatalf("rate %d len %d", rate, len(got))
	}
	if _, _, err := ReadWAVFile(filepath.Join(t.TempDir(), "missing.wav")); err == nil {
		t.Fatal("missing file read")
	}
}

func TestReadWAVSkipsUnknownChunks(t *testing.T) {
	// Build a WAV with a LIST chunk between fmt and data.
	var buf bytes.Buffer
	if err := WriteWAV(&buf, []float64{0.1, 0.2}, 8000); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Splice a "LIST" chunk of 4 bytes before "data" (offset 36).
	spliced := append([]byte{}, raw[:36]...)
	spliced = append(spliced, 'L', 'I', 'S', 'T', 4, 0, 0, 0, 'i', 'n', 'f', 'o')
	spliced = append(spliced, raw[36:]...)
	got, rate, err := ReadWAV(bytes.NewReader(spliced))
	if err != nil {
		t.Fatal(err)
	}
	if rate != 8000 || len(got) != 2 {
		t.Fatalf("rate %d len %d", rate, len(got))
	}
}

func TestReadWAVErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"not riff":  []byte("NOTRIFFxxWAVE"),
		"truncated": []byte("RIFF\x00\x00\x00\x00WAVE"),
	}
	for name, data := range cases {
		if _, _, err := ReadWAV(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Stereo is rejected.
	var buf bytes.Buffer
	WriteWAV(&buf, []float64{0.1}, 8000)
	raw := buf.Bytes()
	raw[22] = 2 // channels
	if _, _, err := ReadWAV(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "layout") {
		t.Errorf("stereo accepted: %v", err)
	}
	// Non-PCM format code is rejected.
	buf.Reset()
	WriteWAV(&buf, []float64{0.1}, 8000)
	raw = buf.Bytes()
	raw[20] = 3 // IEEE float
	if _, _, err := ReadWAV(bytes.NewReader(raw)); err == nil {
		t.Error("non-PCM accepted")
	}
}
