// Package videofeat is a video plug-in for the Ferret toolkit,
// implementing the paper's §8 plan to "expand the usage of [the] Ferret
// toolkit to include video": a video is a sequence of frames, segmented
// into shots at large inter-frame differences; each shot becomes one
// weighted segment described by its average color statistics, motion
// energy, temporal variation and position, and the EMD object distance
// matches shots across videos regardless of order — re-edited cuts of the
// same material rank close.
//
// Videos are represented as directories of numbered frame images (.png or
// .ppm), the form the synthetic generator produces.
package videofeat

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ferret/internal/imagefeat"
	"ferret/internal/object"
)

// FeatureDim is the per-shot feature dimensionality: 9 color moments
// (mean/std/skew per channel, averaged over the shot) + motion energy +
// temporal brightness variation + normalized shot midpoint.
const FeatureDim = 12

// Segmenter detects shot boundaries in a frame sequence.
type Segmenter struct {
	// CutThreshold is the mean per-pixel ℓ₁ color difference between
	// consecutive frames that starts a new shot. Default 0.25.
	CutThreshold float64
	// MinShotFrames merges shots shorter than this into their successor.
	// Default 2.
	MinShotFrames int
}

func (sg Segmenter) withDefaults() Segmenter {
	if sg.CutThreshold <= 0 {
		sg.CutThreshold = 0.25
	}
	if sg.MinShotFrames <= 0 {
		sg.MinShotFrames = 2
	}
	return sg
}

// frameDiff is the mean per-pixel ℓ₁ color difference of two same-size
// frames.
func frameDiff(a, b *imagefeat.Image) float64 {
	if len(a.Pix) != len(b.Pix) || len(a.Pix) == 0 {
		return math.Inf(1)
	}
	var s float64
	for i := range a.Pix {
		s += math.Abs(float64(a.Pix[i].R - b.Pix[i].R))
		s += math.Abs(float64(a.Pix[i].G - b.Pix[i].G))
		s += math.Abs(float64(a.Pix[i].B - b.Pix[i].B))
	}
	return s / float64(len(a.Pix))
}

// Shots returns the [start, end) frame ranges of detected shots.
func (sg Segmenter) Shots(frames []*imagefeat.Image) [][2]int {
	p := sg.withDefaults()
	if len(frames) == 0 {
		return nil
	}
	var cuts []int // index of the first frame of each shot (except shot 0)
	for i := 1; i < len(frames); i++ {
		if frameDiff(frames[i-1], frames[i]) > p.CutThreshold {
			cuts = append(cuts, i)
		}
	}
	var shots [][2]int
	start := 0
	for _, c := range cuts {
		shots = append(shots, [2]int{start, c})
		start = c
	}
	shots = append(shots, [2]int{start, len(frames)})
	// Merge too-short shots into their successor (flash frames).
	merged := shots[:0]
	for i := 0; i < len(shots); i++ {
		s := shots[i]
		for s[1]-s[0] < p.MinShotFrames && i+1 < len(shots) {
			i++
			s[1] = shots[i][1]
		}
		merged = append(merged, s)
	}
	return merged
}

// shotFeature computes the 12-d descriptor of frames[start:end).
func shotFeature(frames []*imagefeat.Image, start, end, total int) []float32 {
	n := end - start
	// Accumulate per-channel moments over every pixel of every frame.
	var mean, m2, m3 [3]float64
	var count float64
	brightness := make([]float64, 0, n)
	for f := start; f < end; f++ {
		var frameLum float64
		for _, p := range frames[f].Pix {
			ch := [3]float64{float64(p.R), float64(p.G), float64(p.B)}
			for c := 0; c < 3; c++ {
				mean[c] += ch[c]
			}
			frameLum += 0.299*ch[0] + 0.587*ch[1] + 0.114*ch[2]
			count++
		}
		brightness = append(brightness, frameLum/float64(len(frames[f].Pix)))
	}
	for c := 0; c < 3; c++ {
		mean[c] /= count
	}
	for f := start; f < end; f++ {
		for _, p := range frames[f].Pix {
			ch := [3]float64{float64(p.R), float64(p.G), float64(p.B)}
			for c := 0; c < 3; c++ {
				d := ch[c] - mean[c]
				m2[c] += d * d
				m3[c] += d * d * d
			}
		}
	}
	var motion float64
	for f := start + 1; f < end; f++ {
		motion += frameDiff(frames[f-1], frames[f])
	}
	if n > 1 {
		motion /= float64(n - 1)
	}
	var bMean, bVar float64
	for _, b := range brightness {
		bMean += b
	}
	bMean /= float64(len(brightness))
	for _, b := range brightness {
		bVar += (b - bMean) * (b - bMean)
	}
	bVar /= float64(len(brightness))

	v := make([]float32, 0, FeatureDim)
	for c := 0; c < 3; c++ {
		v = append(v,
			float32(mean[c]),
			float32(math.Sqrt(m2[c]/count)),
			float32(math.Cbrt(m3[c]/count)),
		)
	}
	v = append(v,
		float32(motion),
		float32(math.Sqrt(bVar)),
		float32((float64(start)+float64(n)/2)/float64(total)),
	)
	return v
}

// Extractor converts frame sequences into Ferret objects: one segment per
// shot, weighted by the square root of the shot length.
type Extractor struct {
	Seg Segmenter
}

// ExtractFrames builds the object from in-memory frames.
func (e *Extractor) ExtractFrames(key string, frames []*imagefeat.Image) (object.Object, error) {
	if len(frames) == 0 {
		return object.Object{}, errors.New("videofeat: no frames")
	}
	shots := e.Seg.Shots(frames)
	weights := make([]float32, len(shots))
	vecs := make([][]float32, len(shots))
	for i, s := range shots {
		weights[i] = float32(math.Sqrt(float64(s[1] - s[0])))
		vecs[i] = shotFeature(frames, s[0], s[1], len(frames))
	}
	return object.New(key, weights, vecs)
}

// Extract loads a video from a directory of numbered frame images.
func (e *Extractor) Extract(dir string) (object.Object, error) {
	frames, err := LoadFrames(dir)
	if err != nil {
		return object.Object{}, err
	}
	return e.ExtractFrames(dir, frames)
}

// LoadFrames reads every .png/.ppm in dir in name order.
func LoadFrames(dir string) ([]*imagefeat.Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(ent.Name())) {
		case ".png", ".ppm":
			names = append(names, ent.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("videofeat: no frames in %s", dir)
	}
	sort.Strings(names)
	frames := make([]*imagefeat.Image, 0, len(names))
	for _, name := range names {
		im, err := imagefeat.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("videofeat: frame %s: %w", name, err)
		}
		frames = append(frames, im)
	}
	return frames, nil
}

// FeatureBounds returns per-dimension [min, max] bounds for sketch
// construction over shot features.
func FeatureBounds() (min, max []float32) {
	min = make([]float32, FeatureDim)
	max = make([]float32, FeatureDim)
	for c := 0; c < 3; c++ {
		min[c*3+0], max[c*3+0] = 0, 1
		min[c*3+1], max[c*3+1] = 0, 0.5
		min[c*3+2], max[c*3+2] = -0.8, 0.8
	}
	min[9], max[9] = 0, 1.5  // motion energy
	min[10], max[10] = 0, .5 // brightness std over time
	min[11], max[11] = 0, 1  // shot midpoint
	return min, max
}
