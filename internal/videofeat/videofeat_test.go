package videofeat

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"ferret/internal/emd"
	"ferret/internal/imagefeat"
)

// flatFrame builds a uniform-color frame.
func flatFrame(w, h int, c imagefeat.RGB) *imagefeat.Image {
	im := imagefeat.NewImage(w, h)
	for i := range im.Pix {
		im.Pix[i] = c
	}
	return im
}

// sequence builds nShots shots of framesEach nearly identical frames with
// strongly different colors between shots.
func sequence(nShots, framesEach int) []*imagefeat.Image {
	colors := []imagefeat.RGB{
		{R: 1, G: 0, B: 0}, {R: 0, G: 0, B: 1}, {R: 0, G: 1, B: 0},
		{R: 1, G: 1, B: 0}, {R: 1, G: 0, B: 1},
	}
	var frames []*imagefeat.Image
	for s := 0; s < nShots; s++ {
		c := colors[s%len(colors)]
		for f := 0; f < framesEach; f++ {
			// Tiny per-frame wobble, below the cut threshold.
			frames = append(frames, flatFrame(16, 16, imagefeat.RGB{
				R: c.R * (1 - 0.01*float32(f%2)),
				G: c.G,
				B: c.B,
			}))
		}
	}
	return frames
}

func TestShotDetection(t *testing.T) {
	frames := sequence(3, 5)
	shots := Segmenter{}.Shots(frames)
	if len(shots) != 3 {
		t.Fatalf("detected %d shots, want 3: %v", len(shots), shots)
	}
	for i, s := range shots {
		if s[1]-s[0] != 5 {
			t.Errorf("shot %d spans %v", i, s)
		}
	}
	// One continuous shot stays one shot.
	if shots := (Segmenter{}).Shots(sequence(1, 8)); len(shots) != 1 {
		t.Fatalf("continuous video split into %d shots", len(shots))
	}
	if shots := (Segmenter{}).Shots(nil); shots != nil {
		t.Fatal("empty video produced shots")
	}
}

func TestShortShotsMerged(t *testing.T) {
	// A one-frame flash between two long shots merges away.
	var frames []*imagefeat.Image
	for i := 0; i < 5; i++ {
		frames = append(frames, flatFrame(8, 8, imagefeat.RGB{R: 1}))
	}
	frames = append(frames, flatFrame(8, 8, imagefeat.RGB{G: 1})) // flash
	for i := 0; i < 5; i++ {
		frames = append(frames, flatFrame(8, 8, imagefeat.RGB{B: 1}))
	}
	shots := Segmenter{MinShotFrames: 2}.Shots(frames)
	for _, s := range shots {
		if s[1]-s[0] < 2 {
			t.Fatalf("short shot survived: %v", shots)
		}
	}
}

func TestExtractFrames(t *testing.T) {
	var e Extractor
	o, err := e.ExtractFrames("vid", sequence(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(o.Segments) != 4 || o.Dim() != FeatureDim {
		t.Fatalf("%d segments, dim %d", len(o.Segments), o.Dim())
	}
	// Equal-length shots share weights.
	if math.Abs(float64(o.Segments[0].Weight)-0.25) > 1e-3 {
		t.Errorf("weight %g", o.Segments[0].Weight)
	}
	if _, err := e.ExtractFrames("empty", nil); err == nil {
		t.Fatal("empty video extracted")
	}
}

func TestFeatureBoundsContainFeatures(t *testing.T) {
	var e Extractor
	o, _ := e.ExtractFrames("vid", sequence(3, 4))
	min, max := FeatureBounds()
	for _, seg := range o.Segments {
		for d, v := range seg.Vec {
			if v < min[d]-1e-6 || v > max[d]+1e-6 {
				t.Errorf("dim %d = %g outside [%g, %g]", d, v, min[d], max[d])
			}
		}
	}
}

func TestLoadFramesFromDirectory(t *testing.T) {
	dir := t.TempDir()
	// Write three frames out of name order to verify sorting.
	for _, name := range []string{"frame002.png", "frame000.png", "frame001.png"} {
		im := flatFrame(8, 8, imagefeat.RGB{R: float32(name[7]-'0') * 0.3})
		if err := im.WriteFile(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644)
	frames, err := LoadFrames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("%d frames", len(frames))
	}
	// Sorted order: red intensity 0, 0.3, 0.6.
	if frames[0].Pix[0].R >= frames[1].Pix[0].R || frames[1].Pix[0].R >= frames[2].Pix[0].R {
		t.Fatal("frames not in name order")
	}
	var e Extractor
	if _, err := e.Extract(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFrames(t.TempDir()); err == nil {
		t.Fatal("empty directory loaded")
	}
	if _, err := LoadFrames(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing directory loaded")
	}
}

// TestReorderedShotsStayClose: the motivation for EMD on shots — a re-edit
// with shuffled shot order must stay closer to the original than an
// unrelated video. (Shot-midpoint features differ under reordering, so the
// distance is small but not zero.)
func TestReorderedShotsStayClose(t *testing.T) {
	a := sequence(4, 5)
	// Reorder shots: move the first shot to the end.
	reordered := append(append([]*imagefeat.Image{}, a[5:]...), a[:5]...)
	other := func() []*imagefeat.Image {
		var f []*imagefeat.Image
		grays := []imagefeat.RGB{{R: 0.3, G: 0.3, B: 0.3}, {R: 0.7, G: 0.7, B: 0.7}}
		for s := 0; s < 4; s++ {
			for i := 0; i < 5; i++ {
				f = append(f, flatFrame(16, 16, grays[s%2]))
			}
		}
		return f
	}()
	var e Extractor
	oa, _ := e.ExtractFrames("a", a)
	ob, _ := e.ExtractFrames("b", reordered)
	oc, _ := e.ExtractFrames("c", other)
	dNear, err := emd.Distance(oa, ob, emd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := emd.Distance(oa, oc, emd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dNear >= dFar {
		t.Fatalf("re-edit distance %g >= unrelated %g", dNear, dFar)
	}
}
