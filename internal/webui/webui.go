// Package webui is the Ferret toolkit's customizable web interface (paper
// §4.3): a small stand-alone web server that talks to the Ferret search
// server through the command-line query interface. The typical flow matches
// the paper's: bootstrap with an attribute (keyword) search, then issue
// similarity queries from a result ("find similar").
//
// The application-specific presentation is isolated in the Presenter hook,
// so a new data type only customizes how one result row is rendered.
package webui

import (
	"html/template"
	"net/http"
	"strconv"
	"strings"

	"ferret/internal/protocol"
)

// Backend is the slice of the command-line-protocol client the UI needs;
// *protocol.Client implements it.
type Backend interface {
	Count() (int, error)
	Query(key string, p protocol.QueryParams) ([]protocol.Result, error)
	Search(keywords []string, attrs map[string]string) ([]protocol.Result, error)
	Info(key string) (map[string]string, error)
}

// Presenter customizes the per-row presentation for a data type: it returns
// extra HTML shown next to a result (e.g. a thumbnail, a waveform link, a
// gene annotation link). Nil renders keys only.
type Presenter func(key string) template.HTML

// Handler builds the web UI's HTTP handler.
func Handler(b Backend, title string, present Presenter) http.Handler {
	ui := &ui{backend: b, title: title, present: present}
	mux := http.NewServeMux()
	mux.HandleFunc("/", ui.home)
	mux.HandleFunc("/search", ui.search)
	mux.HandleFunc("/similar", ui.similar)
	mux.HandleFunc("/info", ui.info)
	return mux
}

type ui struct {
	backend Backend
	title   string
	present Presenter
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}}</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #999; padding: 0.3em 0.8em; }
.err { color: #b00; }
</style></head>
<body>
<h1>{{.Title}}</h1>
<p>{{.Count}} objects indexed.</p>
<form action="/search" method="get">
  Keyword search: <input name="q" value="{{.Query}}">
  <input type="submit" value="Search">
</form>
<form action="/similar" method="get">
  Similar to key: <input name="key" value="{{.Key}}">
  k: <input name="k" value="{{.K}}" size="3">
  mode: <select name="mode">
    <option value="filtering">filtering</option>
    <option value="bruteforce">bruteforce</option>
    <option value="sketch">sketch</option>
  </select>
  <input type="submit" value="Find similar">
</form>
{{if .Error}}<p class="err">{{.Error}}</p>{{end}}
{{if .Results}}
<h2>{{.Heading}}</h2>
<table><tr><th>#</th><th>key</th><th>distance</th><th></th><th></th></tr>
{{range .Results}}
<tr><td>{{.Rank}}</td><td>{{.Key}}</td><td>{{printf "%.4f" .Distance}}</td>
<td><a href="/similar?key={{.KeyEscaped}}">similar</a>
    <a href="/info?key={{.KeyEscaped}}">info</a></td>
<td>{{.Extra}}</td></tr>
{{end}}
</table>
{{end}}
{{if .Pairs}}
<h2>{{.Heading}}</h2>
<table>{{range .Pairs}}<tr><td>{{.Name}}</td><td>{{.Value}}</td></tr>{{end}}</table>
{{end}}
</body></html>`))

type row struct {
	Rank       int
	Key        string
	KeyEscaped string
	Distance   float64
	Extra      template.HTML
}

type pair struct{ Name, Value string }

type pageData struct {
	Title   string
	Count   int
	Query   string
	Key     string
	K       int
	Heading string
	Error   string
	Results []row
	Pairs   []pair
}

func (u *ui) page(w http.ResponseWriter, d pageData) {
	d.Title = u.title
	if d.K == 0 {
		d.K = 10
	}
	if n, err := u.backend.Count(); err == nil {
		d.Count = n
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.Execute(w, d); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (u *ui) rows(results []protocol.Result) []row {
	out := make([]row, len(results))
	for i, r := range results {
		out[i] = row{
			Rank:       i + 1,
			Key:        r.Key,
			KeyEscaped: strings.ReplaceAll(r.Key, "&", "%26"),
			Distance:   r.Distance,
		}
		if u.present != nil {
			out[i].Extra = u.present(r.Key)
		}
	}
	return out
}

func (u *ui) home(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	u.page(w, pageData{})
}

// search handles attribute-based (keyword) queries — the bootstrap step.
func (u *ui) search(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	d := pageData{Query: q}
	if q == "" {
		d.Error = "enter one or more keywords"
		u.page(w, d)
		return
	}
	results, err := u.backend.Search(strings.Fields(q), nil)
	if err != nil {
		d.Error = err.Error()
		u.page(w, d)
		return
	}
	d.Heading = "Attribute search results for " + strconv.Quote(q)
	d.Results = u.rows(results)
	u.page(w, d)
}

// similar handles content-based similarity queries.
func (u *ui) similar(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	d := pageData{Key: key}
	if key == "" {
		d.Error = "enter an object key (use keyword search to find one)"
		u.page(w, d)
		return
	}
	k, _ := strconv.Atoi(r.URL.Query().Get("k"))
	if k <= 0 {
		k = 10
	}
	d.K = k
	params := protocol.QueryParams{K: k, Mode: r.URL.Query().Get("mode")}
	results, err := u.backend.Query(key, params)
	if err != nil {
		d.Error = err.Error()
		u.page(w, d)
		return
	}
	d.Heading = "Objects similar to " + strconv.Quote(key)
	d.Results = u.rows(results)
	u.page(w, d)
}

// info shows the stored attributes of one object.
func (u *ui) info(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	d := pageData{Key: key}
	pairs, err := u.backend.Info(key)
	if err != nil {
		d.Error = err.Error()
		u.page(w, d)
		return
	}
	d.Heading = "Attributes of " + strconv.Quote(key)
	for _, name := range sortedKeys(pairs) {
		d.Pairs = append(d.Pairs, pair{Name: name, Value: pairs[name]})
	}
	u.page(w, d)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
