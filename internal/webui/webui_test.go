package webui

import (
	"errors"
	"fmt"
	"html/template"
	"net/http/httptest"
	"strings"
	"testing"

	"ferret/internal/protocol"
)

// fakeBackend implements Backend in-memory.
type fakeBackend struct {
	count int
	objs  map[string][]protocol.Result // query key → results
	attrs map[string]map[string]string
	kw    map[string][]protocol.Result
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		count: 3,
		objs: map[string][]protocol.Result{
			"dog1.jpg": {{Key: "dog1.jpg", Distance: 0}, {Key: "dog2.jpg", Distance: 0.4}},
		},
		attrs: map[string]map[string]string{
			"dog1.jpg": {"attr:note": "a dog", "key": "dog1.jpg"},
		},
		kw: map[string][]protocol.Result{
			"dog": {{Key: "dog1.jpg"}, {Key: "dog2.jpg"}},
		},
	}
}

func (f *fakeBackend) Count() (int, error) { return f.count, nil }

func (f *fakeBackend) Query(key string, p protocol.QueryParams) ([]protocol.Result, error) {
	r, ok := f.objs[key]
	if !ok {
		return nil, errors.New("unknown object key")
	}
	return r, nil
}

func (f *fakeBackend) Search(keywords []string, attrs map[string]string) ([]protocol.Result, error) {
	if len(keywords) == 0 {
		return nil, errors.New("no keywords")
	}
	return f.kw[keywords[0]], nil
}

func (f *fakeBackend) Info(key string) (map[string]string, error) {
	a, ok := f.attrs[key]
	if !ok {
		return nil, errors.New("unknown object key")
	}
	return a, nil
}

func get(t *testing.T, b Backend, present Presenter, url string) (int, string) {
	t.Helper()
	h := Handler(b, "Test Ferret", present)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
	return rec.Code, rec.Body.String()
}

func TestHomePage(t *testing.T) {
	code, body := get(t, newFakeBackend(), nil, "/")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"Test Ferret", "3 objects indexed", "Keyword search", "Find similar"} {
		if !strings.Contains(body, want) {
			t.Errorf("home page missing %q", want)
		}
	}
}

func TestNotFound(t *testing.T) {
	code, _ := get(t, newFakeBackend(), nil, "/bogus")
	if code != 404 {
		t.Fatalf("status %d", code)
	}
}

func TestKeywordSearch(t *testing.T) {
	code, body := get(t, newFakeBackend(), nil, "/search?q=dog")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "dog1.jpg") || !strings.Contains(body, "dog2.jpg") {
		t.Fatalf("results missing: %s", body)
	}
	// Result rows link to similarity search (the bootstrap flow).
	if !strings.Contains(body, "/similar?key=dog1.jpg") {
		t.Error("no similar link")
	}
}

func TestSearchWithoutQuery(t *testing.T) {
	_, body := get(t, newFakeBackend(), nil, "/search?q=")
	if !strings.Contains(body, "enter one or more keywords") {
		t.Error("missing prompt for empty query")
	}
}

func TestSimilarQuery(t *testing.T) {
	code, body := get(t, newFakeBackend(), nil, "/similar?key=dog1.jpg&k=5&mode=filtering")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "0.4000") {
		t.Errorf("distance not rendered: %s", body)
	}
}

func TestSimilarUnknownKeyShowsError(t *testing.T) {
	_, body := get(t, newFakeBackend(), nil, "/similar?key=nope")
	if !strings.Contains(body, "unknown object key") {
		t.Error("backend error not surfaced")
	}
}

func TestInfoPage(t *testing.T) {
	_, body := get(t, newFakeBackend(), nil, "/info?key=dog1.jpg")
	if !strings.Contains(body, "a dog") {
		t.Errorf("attributes missing: %s", body)
	}
}

func TestPresenterHook(t *testing.T) {
	present := func(key string) template.HTML {
		return template.HTML(fmt.Sprintf("<img src=\"/thumb/%s\">", key))
	}
	_, body := get(t, newFakeBackend(), present, "/search?q=dog")
	if !strings.Contains(body, `<img src="/thumb/dog1.jpg">`) {
		t.Error("presenter output missing")
	}
}

func TestHTMLEscaping(t *testing.T) {
	b := newFakeBackend()
	b.kw["<script>"] = []protocol.Result{{Key: "<script>alert(1)</script>"}}
	_, body := get(t, b, nil, "/search?q=%3Cscript%3E")
	if strings.Contains(body, "<script>alert(1)</script>") {
		t.Fatal("unescaped HTML in output")
	}
}
