package evaltool

import (
	"bufio"
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"ferret/internal/protocol"
)

func TestTransientErrClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"busy shed", &protocol.ServerError{Msg: "BUSY: server at connection limit, retry later"}, true},
		{"other server error", &protocol.ServerError{Msg: "unknown object key"}, false},
		{"eof", io.EOF, true},
		{"unexpected eof", io.ErrUnexpectedEOF, true},
		{"closed conn", net.ErrClosed, true},
		{"refused", syscall.ECONNREFUSED, true},
		{"reset", syscall.ECONNRESET, true},
		{"timeout", &net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}, true},
		{"plain error", errors.New("malformed result line"), false},
	}
	for _, c := range cases {
		if got := transientErr(c.err); got != c.want {
			t.Errorf("%s: transientErr = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := 50 * time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		full := base << attempt
		if full > 2*time.Second || full <= 0 {
			full = 2 * time.Second
		}
		for i := 0; i < 100; i++ {
			d := backoffDelay(attempt, base, rng)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}

// shedServer accepts connections, answering the first shedFirst with one
// BUSY error (then closing, as the real server's limit shed does) and
// speaking a minimal COUNT/PING protocol on the rest.
func shedServer(t *testing.T, shedFirst int) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var mu sync.Mutex
	accepted := 0
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			accepted++
			n := accepted
			mu.Unlock()
			if n <= shedFirst {
				protocol.WriteError(conn, errors.New("BUSY: server at connection limit, retry later"))
				conn.Close()
				continue
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					if strings.HasPrefix(sc.Text(), "COUNT") {
						io.WriteString(c, "OK 1\ncount=20\n")
					} else {
						io.WriteString(c, "OK 0\n")
					}
				}
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestRetryRedialsThroughBusy walks the whole recovery path: the first two
// connections are shed with BUSY, each retry backs off and redials, and
// the third connection serves the request.
func TestRetryRedialsThroughBusy(t *testing.T) {
	addr := shedServer(t, 2)
	client, err := protocol.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	dials := 0
	r := &RemoteRunner{
		Client:      client,
		BackoffBase: time.Millisecond,
		sleep:       func(d time.Duration) { slept = append(slept, d) },
		Redial:      func() (*protocol.Client, error) { dials++; return protocol.Dial(addr) },
	}
	defer r.Client.Close()
	n, err := r.count()
	if err != nil {
		t.Fatalf("count after sheds: %v", err)
	}
	if n != 20 {
		t.Fatalf("count = %d, want 20", n)
	}
	if len(slept) != 2 || dials != 2 {
		t.Fatalf("slept %d times, redialed %d times; want 2/2", len(slept), dials)
	}
}

// TestRetryExhaustsOnPersistentBusy asserts the retry budget is finite: a
// server that always sheds eventually surfaces the BUSY error.
func TestRetryExhaustsOnPersistentBusy(t *testing.T) {
	addr := shedServer(t, 1<<30)
	client, err := protocol.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	slept := 0
	r := &RemoteRunner{
		Client:      client,
		Retries:     2,
		BackoffBase: time.Millisecond,
		sleep:       func(time.Duration) { slept++ },
		Redial:      func() (*protocol.Client, error) { return protocol.Dial(addr) },
	}
	defer r.Client.Close()
	_, err = r.count()
	if err == nil {
		t.Fatal("count succeeded against an always-shedding server")
	}
	if !transientErr(err) {
		t.Fatalf("exhausted error %v is not the transient BUSY", err)
	}
	if slept != 2 {
		t.Fatalf("slept %d times, want Retries=2", slept)
	}
}

// TestRetrySkipsDeterministicErrors asserts non-transient failures are not
// retried at all.
func TestRetrySkipsDeterministicErrors(t *testing.T) {
	calls := 0
	r := &RemoteRunner{sleep: func(time.Duration) { t.Fatal("slept on a deterministic error") }}
	err := r.retry(func() error {
		calls++
		return &protocol.ServerError{Msg: "unknown object key \"ghost\""}
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the error after exactly 1 call", err, calls)
	}
}
