// Package evaltool is the Ferret toolkit's performance evaluation tool
// (paper §4.3, §6): it drives batch queries from a formatted benchmark file
// describing ground-truth similarity sets and reports search-quality
// statistics (average precision, first tier, second tier) and query
// latency.
//
// The benchmark file format is one similarity set per line: whitespace-
// separated object keys, '#' comments and blank lines ignored.
package evaltool

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ferret/internal/core"
	"ferret/internal/metrics"
	"ferret/internal/object"
)

// ParseBenchmark reads a benchmark file of similarity sets.
func ParseBenchmark(r io.Reader) ([][]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var sets [][]string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys := strings.Fields(line)
		if len(keys) < 2 {
			return nil, fmt.Errorf("evaltool: line %d: similarity set needs at least 2 members", lineNo)
		}
		sets = append(sets, keys)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return sets, nil
}

// WriteBenchmark writes similarity sets in the format ParseBenchmark reads.
func WriteBenchmark(w io.Writer, sets [][]string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# Ferret benchmark: one similarity set per line")
	for _, set := range sets {
		fmt.Fprintln(bw, strings.Join(set, " "))
	}
	return bw.Flush()
}

// Report aggregates a benchmark run.
type Report struct {
	metrics.QualityStats
	// TotalQueryTime is the sum of query latencies; AvgQueryTime the mean.
	TotalQueryTime time.Duration
	AvgQueryTime   time.Duration
	// P50QueryTime and P95QueryTime are latency percentiles across the
	// run's queries.
	P50QueryTime time.Duration
	P95QueryTime time.Duration
	// DatasetSize is the engine's object count during the run (the default
	// rank for missed gold objects).
	DatasetSize int
	// Skipped counts queries whose key was absent from the database.
	Skipped int

	latencies []time.Duration
}

// percentile returns the p-quantile (0 ≤ p ≤ 1) of the recorded latencies.
func (r *Report) percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Runner drives batch queries against an engine.
type Runner struct {
	Engine *core.Engine
	// Options for every query. K is raised automatically to 2·(|Q|−1) so
	// the second-tier metric is measurable; pass a larger K for deeper
	// result lists.
	Options core.QueryOptions
	// QueriesPerSet: how many members of each set act as the query object.
	// The paper uses the first member; default 1.
	QueriesPerSet int
}

// Run executes the benchmark: for each similarity set, the first
// QueriesPerSet members are used as query objects, the query object itself
// is excluded from the results, and quality metrics are accumulated.
func (r *Runner) Run(sets [][]string) (Report, error) {
	rep := Report{DatasetSize: r.Engine.Count()}
	perSet := r.QueriesPerSet
	if perSet <= 0 {
		perSet = 1
	}
	for _, set := range sets {
		// Resolve keys to IDs once per set.
		ids := make([]object.ID, 0, len(set))
		for _, key := range set {
			if id, ok := r.Engine.Meta().LookupKey(key); ok {
				ids = append(ids, id)
			}
		}
		if len(ids) < 2 {
			rep.Skipped++
			continue
		}
		gold := metrics.NewGoldSet(ids...)
		for qi := 0; qi < perSet && qi < len(ids); qi++ {
			query := ids[qi]
			opt := r.Options
			if need := 2 * (len(ids) - 1); opt.K < need+1 {
				opt.K = need + 1 // +1 because the query itself may appear
			}
			start := time.Now()
			results, err := r.Engine.QueryByID(query, opt)
			if err != nil {
				return rep, fmt.Errorf("evaltool: query %d of set: %w", query, err)
			}
			lat := time.Since(start)
			rep.TotalQueryTime += lat
			rep.latencies = append(rep.latencies, lat)
			ranked := make([]object.ID, 0, len(results))
			for _, res := range results {
				if res.ID == query {
					continue // the query object does not count as a result
				}
				ranked = append(ranked, res.ID)
			}
			rep.Add(
				metrics.AveragePrecision(query, gold, ranked, rep.DatasetSize),
				metrics.FirstTier(query, gold, ranked),
				metrics.SecondTier(query, gold, ranked),
			)
		}
	}
	if rep.Queries > 0 {
		rep.AvgQueryTime = rep.TotalQueryTime / time.Duration(rep.Queries)
		rep.P50QueryTime = rep.percentile(0.50)
		rep.P95QueryTime = rep.percentile(0.95)
	}
	return rep, nil
}

// String renders the report in the style of the paper's tables.
func (r Report) String() string {
	return fmt.Sprintf(
		"queries=%d avg_precision=%.3f first_tier=%.3f second_tier=%.3f avg_time=%v dataset=%d skipped=%d",
		r.Queries, r.AvgPrecision, r.AvgFirstTier, r.AvgSecondTier,
		r.AvgQueryTime.Round(time.Microsecond), r.DatasetSize, r.Skipped,
	)
}
