package evaltool

import (
	"context"
	"net"
	"testing"

	"ferret/internal/core"
	"ferret/internal/protocol"
	"ferret/internal/server"
)

func TestRemoteRunner(t *testing.T) {
	engine, sets := buildEngine(t)
	srv := &server.Server{Engine: engine, DefaultK: 10}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), l)
	t.Cleanup(func() { srv.Close() })
	client, err := protocol.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })

	r := &RemoteRunner{Client: client, Params: protocol.QueryParams{Mode: "bruteforce"}}
	rep, err := r.Run(sets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 5 {
		t.Fatalf("ran %d queries", rep.Queries)
	}
	if rep.AvgPrecision < 0.95 {
		t.Fatalf("remote quality %s", rep)
	}
	if rep.DatasetSize != 20 {
		t.Fatalf("dataset size %d", rep.DatasetSize)
	}
	if rep.P95QueryTime <= 0 {
		t.Fatal("no latency percentiles")
	}

	// The remote report must agree with the in-process runner.
	local := &Runner{Engine: engine, Options: core.QueryOptions{Mode: core.BruteForceOriginal}}
	lrep, err := local.Run(sets)
	if err != nil {
		t.Fatal(err)
	}
	if lrep.AvgPrecision != rep.AvgPrecision {
		t.Fatalf("remote %.3f vs local %.3f avg precision", rep.AvgPrecision, lrep.AvgPrecision)
	}

	// Unknown keys are skipped, not fatal.
	rep, err = r.Run([][]string{{"ghost1", "ghost2"}})
	if err != nil || rep.Skipped != 1 {
		t.Fatalf("ghost set: %v skipped=%d", err, rep.Skipped)
	}
	// Singleton sets skipped too.
	rep, _ = r.Run([][]string{{"only"}})
	if rep.Skipped != 1 {
		t.Fatalf("singleton skipped=%d", rep.Skipped)
	}
}
