package evaltool

import (
	"fmt"
	"time"

	"ferret/internal/metrics"
	"ferret/internal/object"
	"ferret/internal/protocol"
)

// RemoteRunner drives the benchmark through the command-line query
// interface of a running server — the paper's deployment of the
// performance evaluation tool (§4.1.4, §4.3), which lets parameters be
// swept by scripts without restarting the server.
type RemoteRunner struct {
	// Client is the protocol connection to the server.
	Client *protocol.Client
	// Params are applied to every query; K is raised per set so the
	// second-tier metric is measurable.
	Params protocol.QueryParams
	// DatasetSize is the default rank for missed gold objects; 0 asks the
	// server via COUNT.
	DatasetSize int
}

// Run evaluates similarity sets of object keys against the remote server.
// The first member of each set is the query; results are matched by key.
func (r *RemoteRunner) Run(sets [][]string) (Report, error) {
	rep := Report{DatasetSize: r.DatasetSize}
	if rep.DatasetSize == 0 {
		n, err := r.Client.Count()
		if err != nil {
			return rep, fmt.Errorf("evaltool: COUNT: %w", err)
		}
		rep.DatasetSize = n
	}
	// Keys get stable synthetic IDs so the metrics package (which ranks by
	// object.ID) can score key-level results.
	idOf := map[string]object.ID{}
	intern := func(key string) object.ID {
		if id, ok := idOf[key]; ok {
			return id
		}
		id := object.ID(len(idOf) + 1)
		idOf[key] = id
		return id
	}

	for _, set := range sets {
		if len(set) < 2 {
			rep.Skipped++
			continue
		}
		ids := make([]object.ID, len(set))
		for i, key := range set {
			ids[i] = intern(key)
		}
		gold := metrics.NewGoldSet(ids...)
		queryKey := set[0]
		queryID := ids[0]

		params := r.Params
		if need := 2*(len(set)-1) + 1; params.K < need {
			params.K = need
		}
		start := time.Now()
		results, err := r.Client.Query(queryKey, params)
		if err != nil {
			if _, ok := err.(*protocol.ServerError); ok {
				rep.Skipped++ // e.g. the key is not in the database
				continue
			}
			return rep, fmt.Errorf("evaltool: QUERY %s: %w", queryKey, err)
		}
		lat := time.Since(start)
		rep.TotalQueryTime += lat
		rep.latencies = append(rep.latencies, lat)

		ranked := make([]object.ID, 0, len(results))
		for _, res := range results {
			if res.Key == queryKey {
				continue
			}
			ranked = append(ranked, intern(res.Key))
		}
		rep.Add(
			metrics.AveragePrecision(queryID, gold, ranked, rep.DatasetSize),
			metrics.FirstTier(queryID, gold, ranked),
			metrics.SecondTier(queryID, gold, ranked),
		)
	}
	if rep.Queries > 0 {
		rep.AvgQueryTime = rep.TotalQueryTime / time.Duration(rep.Queries)
		rep.P50QueryTime = rep.percentile(0.50)
		rep.P95QueryTime = rep.percentile(0.95)
	}
	return rep, nil
}
