package evaltool

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"syscall"
	"time"

	"ferret/internal/metrics"
	"ferret/internal/object"
	"ferret/internal/protocol"
)

// RemoteRunner drives the benchmark through the command-line query
// interface of a running server — the paper's deployment of the
// performance evaluation tool (§4.1.4, §4.3), which lets parameters be
// swept by scripts without restarting the server.
//
// A long benchmark shouldn't die to a transient hiccup: requests that fail
// with a timeout, a dropped connection, or the server's BUSY shed response
// are retried with capped exponential backoff plus jitter, redialing the
// connection between attempts when Redial is set.
type RemoteRunner struct {
	// Client is the protocol connection to the server.
	Client *protocol.Client
	// Params are applied to every query; K is raised per set so the
	// second-tier metric is measurable.
	Params protocol.QueryParams
	// DatasetSize is the default rank for missed gold objects; 0 asks the
	// server via COUNT.
	DatasetSize int
	// Timeout bounds each request round trip (0 = none). It is applied to
	// Client at the start of Run and to every redialed connection.
	Timeout time.Duration
	// Retries is how many extra attempts a transiently failing request
	// gets (default 3; negative disables retries).
	Retries int
	// BackoffBase is the first retry delay; attempt i waits up to
	// BackoffBase·2ⁱ, capped at 2s, with ±50% jitter (default 50ms).
	BackoffBase time.Duration
	// Redial, when set, reopens the server connection before a retry —
	// required to recover from transport failures and BUSY sheds, both of
	// which leave the old connection dead.
	Redial func() (*protocol.Client, error)

	// sleep is a test seam for the backoff delays.
	sleep func(time.Duration)
	rng   *rand.Rand
}

// transientErr classifies failures worth retrying: timeouts, connection
// resets/refusals, a dropped transport, and the server's BUSY shed
// response. Other server errors (unknown key, bad arguments) are
// deterministic and not retried.
func transientErr(err error) bool {
	var se *protocol.ServerError
	if errors.As(err, &se) {
		return strings.HasPrefix(se.Msg, "BUSY")
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// backoffDelay is the capped exponential schedule with jitter: full delay
// for attempt i is base·2ⁱ capped at 2s, jittered to [½d, d] so a fleet of
// retrying clients doesn't thunder back in lockstep.
func backoffDelay(attempt int, base time.Duration, rng *rand.Rand) time.Duration {
	const maxDelay = 2 * time.Second
	d := base
	for i := 0; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// retry runs one request op, retrying transient failures per the runner's
// policy. Any transient failure redials when possible: timeouts poison the
// protocol stream (a late response would desynchronize it) and BUSY sheds
// close the connection server-side, so a fresh connection is the only safe
// way back.
func (r *RemoteRunner) retry(op func() error) error {
	retries := r.Retries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}
	base := r.BackoffBase
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if r.sleep == nil {
		r.sleep = time.Sleep
	}
	if r.rng == nil {
		r.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !transientErr(err) || attempt >= retries {
			return err
		}
		r.sleep(backoffDelay(attempt, base, r.rng))
		if r.Redial != nil {
			c, derr := r.Redial()
			if derr != nil {
				continue // server still down: let the next attempt back off again
			}
			r.Client.Close()
			if r.Timeout > 0 {
				c.SetTimeout(r.Timeout)
			}
			r.Client = c
		}
	}
}

// query is one QUERY round trip under the retry policy.
func (r *RemoteRunner) query(key string, p protocol.QueryParams) ([]protocol.Result, error) {
	var out []protocol.Result
	err := r.retry(func() error {
		var err error
		out, err = r.Client.Query(key, p)
		return err
	})
	return out, err
}

// count is one COUNT round trip under the retry policy.
func (r *RemoteRunner) count() (int, error) {
	var n int
	err := r.retry(func() error {
		var err error
		n, err = r.Client.Count()
		return err
	})
	return n, err
}

// Run evaluates similarity sets of object keys against the remote server.
// The first member of each set is the query; results are matched by key.
func (r *RemoteRunner) Run(sets [][]string) (Report, error) {
	rep := Report{DatasetSize: r.DatasetSize}
	if r.Timeout > 0 {
		r.Client.SetTimeout(r.Timeout)
	}
	if rep.DatasetSize == 0 {
		n, err := r.count()
		if err != nil {
			return rep, fmt.Errorf("evaltool: COUNT: %w", err)
		}
		rep.DatasetSize = n
	}
	// Keys get stable synthetic IDs so the metrics package (which ranks by
	// object.ID) can score key-level results.
	idOf := map[string]object.ID{}
	intern := func(key string) object.ID {
		if id, ok := idOf[key]; ok {
			return id
		}
		id := object.ID(len(idOf) + 1)
		idOf[key] = id
		return id
	}

	for _, set := range sets {
		if len(set) < 2 {
			rep.Skipped++
			continue
		}
		ids := make([]object.ID, len(set))
		for i, key := range set {
			ids[i] = intern(key)
		}
		gold := metrics.NewGoldSet(ids...)
		queryKey := set[0]
		queryID := ids[0]

		params := r.Params
		if need := 2*(len(set)-1) + 1; params.K < need {
			params.K = need
		}
		start := time.Now()
		results, err := r.query(queryKey, params)
		if err != nil {
			// Deterministic server errors (e.g. the key is not in the
			// database) skip the set; a transient error surviving the retry
			// budget is a real outage and fails the run.
			if _, ok := err.(*protocol.ServerError); ok && !transientErr(err) {
				rep.Skipped++
				continue
			}
			return rep, fmt.Errorf("evaltool: QUERY %s: %w", queryKey, err)
		}
		lat := time.Since(start)
		rep.TotalQueryTime += lat
		rep.latencies = append(rep.latencies, lat)

		ranked := make([]object.ID, 0, len(results))
		for _, res := range results {
			if res.Key == queryKey {
				continue
			}
			ranked = append(ranked, intern(res.Key))
		}
		rep.Add(
			metrics.AveragePrecision(queryID, gold, ranked, rep.DatasetSize),
			metrics.FirstTier(queryID, gold, ranked),
			metrics.SecondTier(queryID, gold, ranked),
		)
	}
	if rep.Queries > 0 {
		rep.AvgQueryTime = rep.TotalQueryTime / time.Duration(rep.Queries)
		rep.P50QueryTime = rep.percentile(0.50)
		rep.P95QueryTime = rep.percentile(0.95)
	}
	return rep, nil
}
