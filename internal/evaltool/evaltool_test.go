package evaltool

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ferret/internal/attr"
	"ferret/internal/core"
	"ferret/internal/object"
	"ferret/internal/sketch"
)

func TestParseBenchmark(t *testing.T) {
	src := `# comment
a b c

x y
`
	sets, err := ParseBenchmark(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 || len(sets[0]) != 3 || sets[1][1] != "y" {
		t.Fatalf("sets %v", sets)
	}
}

func TestParseBenchmarkRejectsSingleton(t *testing.T) {
	if _, err := ParseBenchmark(strings.NewReader("only-one\n")); err == nil {
		t.Fatal("singleton set accepted")
	}
}

func TestBenchmarkRoundTrip(t *testing.T) {
	sets := [][]string{{"a", "b"}, {"c", "d", "e"}}
	var buf bytes.Buffer
	if err := WriteBenchmark(&buf, sets); err != nil {
		t.Fatal(err)
	}
	got, err := ParseBenchmark(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1][2] != "e" {
		t.Fatalf("round trip %v", got)
	}
}

// buildEngine ingests nClusters clusters of perCluster similar objects and
// returns the engine plus the ground-truth sets.
func buildEngine(t *testing.T) (*core.Engine, [][]string) {
	t.Helper()
	const d = 8
	min := make([]float32, d)
	max := make([]float32, d)
	for i := range max {
		max[i] = 1
	}
	e, err := core.Open(core.Config{
		Dir:    t.TempDir(),
		Sketch: sketch.Params{N: 256, K: 1, Min: min, Max: max, Seed: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	rng := rand.New(rand.NewSource(1))
	var sets [][]string
	for c := 0; c < 5; c++ {
		base := make([]float32, d)
		for i := range base {
			base[i] = rng.Float32()
		}
		var keys []string
		for m := 0; m < 4; m++ {
			vec := make([]float32, d)
			for i := range vec {
				vec[i] = base[i] + float32(rng.NormFloat64()*0.01)
			}
			key := fmt.Sprintf("c%d/m%d", c, m)
			if _, err := e.Ingest(object.Single(key, vec), attr.Attrs{}); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, key)
		}
		sets = append(sets, keys)
	}
	return e, sets
}

func TestRunPerfectDataset(t *testing.T) {
	e, sets := buildEngine(t)
	r := &Runner{Engine: e, Options: core.QueryOptions{Mode: core.BruteForceOriginal}}
	rep, err := r.Run(sets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 5 {
		t.Fatalf("ran %d queries", rep.Queries)
	}
	// Tight clusters on a brute-force scan: near-perfect quality.
	if rep.AvgPrecision < 0.95 || rep.AvgFirstTier < 0.95 || rep.AvgSecondTier < 0.95 {
		t.Fatalf("unexpected quality: %s", rep)
	}
	if rep.AvgQueryTime <= 0 {
		t.Fatal("no timing recorded")
	}
	if rep.DatasetSize != 20 {
		t.Fatalf("dataset size %d", rep.DatasetSize)
	}
}

func TestRunMultipleQueriesPerSet(t *testing.T) {
	e, sets := buildEngine(t)
	r := &Runner{
		Engine:        e,
		Options:       core.QueryOptions{Mode: core.Filtering},
		QueriesPerSet: 3,
	}
	rep, err := r.Run(sets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 15 {
		t.Fatalf("ran %d queries, want 15", rep.Queries)
	}
}

func TestRunSkipsUnknownSets(t *testing.T) {
	e, sets := buildEngine(t)
	sets = append(sets, []string{"ghost/a", "ghost/b"})
	r := &Runner{Engine: e, Options: core.QueryOptions{Mode: core.BruteForceOriginal}}
	rep, err := r.Run(sets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Queries != 5 {
		t.Fatalf("skipped=%d queries=%d", rep.Skipped, rep.Queries)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	e, sets := buildEngine(t)
	r := &Runner{Engine: e, Options: core.QueryOptions{Mode: core.BruteForceOriginal}, QueriesPerSet: 4}
	rep, err := r.Run(sets)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P50QueryTime <= 0 || rep.P95QueryTime < rep.P50QueryTime {
		t.Fatalf("percentiles: p50=%v p95=%v", rep.P50QueryTime, rep.P95QueryTime)
	}
	if rep.P95QueryTime > rep.TotalQueryTime {
		t.Fatalf("p95 %v exceeds total %v", rep.P95QueryTime, rep.TotalQueryTime)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var rep Report
	if rep.percentile(0.5) != 0 {
		t.Fatal("empty percentile not zero")
	}
	rep.latencies = []time.Duration{30, 10, 20}
	if got := rep.percentile(0.5); got != 20 {
		t.Fatalf("p50 = %v", got)
	}
	if got := rep.percentile(1.0); got != 30 {
		t.Fatalf("p100 = %v", got)
	}
	if got := rep.percentile(0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
}

func TestReportString(t *testing.T) {
	var rep Report
	rep.Add(0.5, 0.25, 0.75)
	s := rep.String()
	for _, want := range []string{"queries=1", "avg_precision=0.500", "first_tier=0.250"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report %q missing %q", s, want)
		}
	}
}
