package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ferret_test_total", "test counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // clamped: counters never decrease
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("ferret_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("ferret_dup_total", "dup")
	b := reg.Counter("ferret_dup_total", "dup")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	l1 := reg.Counter("ferret_labelled_total", "dup", "stage", "filter")
	l2 := reg.Counter("ferret_labelled_total", "dup", "stage", "rank")
	if l1 == l2 {
		t.Fatal("distinct label values must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("ferret_dup_total", "now a gauge")
}

func TestConcurrentCountersAndHistograms(t *testing.T) {
	// Satellite: goroutine-hammering under -race. 16 goroutines × 1000 ops
	// against a shared counter, gauge and histogram.
	reg := NewRegistry()
	c := reg.Counter("ferret_race_total", "race")
	g := reg.Gauge("ferret_race_gauge", "race")
	h := reg.Histogram("ferret_race_seconds", "race", nil)
	const workers, ops = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%100) * 1e-5)
				if i%100 == 0 {
					// Concurrent readers must be race-free too.
					_ = h.Snapshot().Quantile(0.5)
					reg.Each(func(string, float64) {})
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*ops {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*ops)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*ops {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*ops)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ferret_events_total", "Events.", "kind", "a").Add(3)
	reg.Counter("ferret_events_total", "Events.", "kind", "b").Add(4)
	reg.Gauge("ferret_live", "Live objects.").Set(12)
	h := reg.Histogram("ferret_lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE ferret_events_total counter",
		`ferret_events_total{kind="a"} 3`,
		`ferret_events_total{kind="b"} 4`,
		"# TYPE ferret_live gauge",
		"ferret_live 12",
		"# TYPE ferret_lat_seconds histogram",
		`ferret_lat_seconds_bucket{le="0.01"} 1`,
		`ferret_lat_seconds_bucket{le="0.1"} 2`,
		`ferret_lat_seconds_bucket{le="1"} 2`,
		`ferret_lat_seconds_bucket{le="+Inf"} 3`,
		"ferret_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per base name even with multiple label sets.
	if strings.Count(out, "# TYPE ferret_events_total counter") != 1 {
		t.Fatalf("TYPE repeated:\n%s", out)
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestEachFlattensLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ferret_stage_total", "x", "stage", "filter").Add(2)
	h := reg.Histogram("ferret_stage_seconds", "x", nil, "stage", "rank")
	h.Observe(0.25)
	got := map[string]float64{}
	reg.Each(func(name string, v float64) { got[name] = v })
	if got["ferret_stage_total_filter"] != 2 {
		t.Fatalf("flat counter missing: %v", got)
	}
	if got["ferret_stage_seconds_rank_count"] != 1 {
		t.Fatalf("flat histogram count missing: %v", got)
	}
	if got["ferret_stage_seconds_rank_p50"] <= 0 {
		t.Fatalf("p50 not positive: %v", got)
	}
	if reg.Value("ferret_stage_total_filter") != 2 {
		t.Fatal("Value lookup failed")
	}
}
