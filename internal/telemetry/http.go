package telemetry

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugHandler serves the observability surface for one or more registries:
//
//	/metrics       Prometheus text exposition (version 0.0.4)
//	/debug/vars    expvar-style JSON: the process's published expvars
//	               (cmdline, memstats) plus every registered metric as a
//	               flat name
//	/debug/pprof/  the net/http/pprof profiling endpoints
//
// Binaries mount it on an opt-in -debug-addr listener so production traffic
// ports never expose profiling.
func DebugHandler(regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, reg := range regs {
			if reg == nil {
				continue
			}
			if err := reg.WritePrometheus(w); err != nil {
				return
			}
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{")
		first := true
		emit := func(name, jsonValue string) {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%s: %s", strconv.Quote(name), jsonValue)
		}
		expvar.Do(func(kv expvar.KeyValue) { emit(kv.Key, kv.Value.String()) })
		for _, reg := range regs {
			if reg == nil {
				continue
			}
			reg.Each(func(name string, v float64) { emit(name, formatJSONNumber(v)) })
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// formatJSONNumber renders a float as a valid JSON number (no Inf/NaN).
func formatJSONNumber(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	switch s {
	case "+Inf", "-Inf", "Inf", "NaN":
		return "0"
	}
	return s
}

// statusWriter captures the response code written by a wrapped handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// InstrumentHTTP wraps an HTTP handler with request count, error count,
// in-flight gauge and latency histogram metrics, labelled by handler name.
func InstrumentHTTP(reg *Registry, name string, h http.Handler) http.Handler {
	requests := reg.Counter("ferret_http_requests_total", "HTTP requests served.", "handler", name)
	errors := reg.Counter("ferret_http_errors_total", "HTTP responses with status >= 500.", "handler", name)
	inflight := reg.Gauge("ferret_http_inflight_requests", "HTTP requests currently being served.", "handler", name)
	latency := reg.Histogram("ferret_http_request_seconds", "HTTP request latency in seconds.", nil, "handler", name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		inflight.Add(-1)
		requests.Inc()
		if sw.status >= 500 {
			errors.Inc()
		}
		latency.ObserveSince(start)
	})
}
