package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestRegisterBuildInfo: the build-identity series must carry the version
// and Go runtime as labels with a constant value of 1, and the start time
// must be a plausible recent Unix timestamp.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	before := time.Now().Unix()
	RegisterBuildInfo(reg)

	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	want := `ferret_build_info{goversion="` + runtime.Version() + `",version="` + Version + `"} 1`
	alt := `ferret_build_info{version="` + Version + `",goversion="` + runtime.Version() + `"} 1`
	if !strings.Contains(text, want) && !strings.Contains(text, alt) {
		t.Fatalf("ferret_build_info with version/goversion labels missing:\n%s", text)
	}

	start := reg.Value("ferret_start_time_seconds")
	if int64(start) < before || int64(start) > time.Now().Unix() {
		t.Fatalf("ferret_start_time_seconds = %g, outside [%d, now]", start, before)
	}
}

// TestRegisterBuildInfoIdempotent: re-registering on a shared registry (an
// engine reopened in-process) must keep the original start time.
func TestRegisterBuildInfoIdempotent(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	reg.Gauge("ferret_start_time_seconds", "").Set(42)
	RegisterBuildInfo(reg)
	if got := reg.Value("ferret_start_time_seconds"); got != 42 {
		t.Fatalf("start time overwritten on re-registration: %g", got)
	}
}
