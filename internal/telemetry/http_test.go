package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestDebugHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ferret_things_total", "Things.").Add(9)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "ferret_things_total 9") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestDebugHandlerVarsIsJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("ferret_live", "Live.").Set(3)
	h := reg.Histogram("ferret_lat_seconds", "Latency.", nil)
	h.Observe(0.01)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("vars not valid JSON: %v\n%s", err, body)
	}
	if decoded["ferret_live"] != 3.0 {
		t.Fatalf("ferret_live = %v", decoded["ferret_live"])
	}
	if decoded["ferret_lat_seconds_count"] != 1.0 {
		t.Fatalf("histogram count = %v", decoded["ferret_lat_seconds_count"])
	}
	// expvar's standard vars ride along.
	if _, ok := decoded["memstats"]; !ok {
		t.Fatal("memstats missing from /debug/vars")
	}
}

func TestDebugHandlerPprofIndex(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}

// TestDebugHandlerConcurrentScrape hammers the registry from writer
// goroutines while scrapers pull /metrics and /debug/vars; run under -race
// this is the exporter's synchronization test. Every scrape must return a
// 200 with a parseable body regardless of concurrent updates.
func TestDebugHandlerConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ferret_scrape_test_total", "Test counter.")
	g := reg.Gauge("ferret_scrape_test", "Test gauge.")
	h := reg.Histogram("ferret_scrape_test_seconds", "Test histogram.", FineTimeBuckets)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%1000) * 1e-6)
				// New series appear mid-scrape too.
				reg.Counter("ferret_scrape_dyn_total", "Dynamic.", "w", string(rune('a'+w))).Inc()
			}
		}(w)
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 || !strings.Contains(string(body), "ferret_scrape_test_total") {
					t.Errorf("scrape %d: status %d", i, resp.StatusCode)
					return
				}
				resp, err = http.Get(srv.URL + "/debug/vars")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ = io.ReadAll(resp.Body)
				resp.Body.Close()
				var decoded map[string]any
				if err := json.Unmarshal(body, &decoded); err != nil {
					t.Errorf("scrape %d: vars not valid JSON under load: %v", i, err)
					return
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

func TestInstrumentHTTP(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHTTP(reg, "web", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			w.WriteHeader(500)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, path := range []string{"/", "/", "/boom"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := reg.Value("ferret_http_requests_total_web"); got != 3 {
		t.Fatalf("requests = %g", got)
	}
	if got := reg.Value("ferret_http_errors_total_web"); got != 1 {
		t.Fatalf("errors = %g", got)
	}
	if got := reg.Value("ferret_http_inflight_requests_web"); got != 0 {
		t.Fatalf("inflight = %g", got)
	}
}
