package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ferret_things_total", "Things.").Add(9)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "ferret_things_total 9") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestDebugHandlerVarsIsJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("ferret_live", "Live.").Set(3)
	h := reg.Histogram("ferret_lat_seconds", "Latency.", nil)
	h.Observe(0.01)
	srv := httptest.NewServer(DebugHandler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("vars not valid JSON: %v\n%s", err, body)
	}
	if decoded["ferret_live"] != 3.0 {
		t.Fatalf("ferret_live = %v", decoded["ferret_live"])
	}
	if decoded["ferret_lat_seconds_count"] != 1.0 {
		t.Fatalf("histogram count = %v", decoded["ferret_lat_seconds_count"])
	}
	// expvar's standard vars ride along.
	if _, ok := decoded["memstats"]; !ok {
		t.Fatal("memstats missing from /debug/vars")
	}
}

func TestDebugHandlerPprofIndex(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
}

func TestInstrumentHTTP(t *testing.T) {
	reg := NewRegistry()
	h := InstrumentHTTP(reg, "web", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/boom" {
			w.WriteHeader(500)
			return
		}
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	for _, path := range []string{"/", "/", "/boom"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := reg.Value("ferret_http_requests_total_web"); got != 3 {
		t.Fatalf("requests = %g", got)
	}
	if got := reg.Value("ferret_http_errors_total_web"); got != 1 {
		t.Fatalf("errors = %g", got)
	}
	if got := reg.Value("ferret_http_inflight_requests_web"); got != 0 {
		t.Fatalf("inflight = %g", got)
	}
}
