package trace

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ferret/internal/telemetry"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id == 0 {
		t.Fatal("zero trace id")
	}
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("id string %q not 16 hex chars", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %v != %v", back, id)
	}
	if _, err := ParseTraceID("zzz"); err == nil {
		t.Fatal("parse of junk succeeded")
	}
	// IDs marshal as quoted hex, not JSON numbers (uint64 > 2^53 unsafe).
	b, _ := json.Marshal(id)
	if string(b) != `"`+s+`"` {
		t.Fatalf("marshal = %s", b)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	var a *Active
	if tr.Begin(a, "q") {
		t.Fatal("nil tracer armed a trace")
	}
	// Every recording call must no-op on nil/zero values.
	a.StartSpan("x").SetAttr("k", 1).End()
	a.Record("y", time.Now(), time.Millisecond)
	a.MarkSlow()
	a.Force()
	if a.Finish() != nil || a.Armed() || a.ID() != 0 {
		t.Fatal("nil Active not inert")
	}
	var zero Active
	zero.StartSpan("x").End()
	if zero.Finish() != nil {
		t.Fatal("disarmed Active retained a trace")
	}
	if tr.Recent() != nil || tr.Slow() != nil || tr.Find(1) != nil {
		t.Fatal("nil tracer returned traces")
	}
	if tr.SlowThreshold() != 0 {
		t.Fatal("nil tracer has slow threshold")
	}
}

func TestDisableReturnsNil(t *testing.T) {
	if New(Params{Disable: true}, nil) != nil {
		t.Fatal("Disable did not return nil tracer")
	}
}

func TestForcedRetention(t *testing.T) {
	// Head sampling off: only forced/slow traces survive.
	tr := New(Params{SampleEvery: -1, SlowThreshold: time.Hour}, nil)
	var a Active
	if !tr.Begin(&a, "search") {
		t.Fatal("Begin failed")
	}
	if a.Finish() != nil {
		t.Fatal("unforced trace retained with sampling off")
	}

	tr.Begin(&a, "search")
	a.Force()
	st := time.Now()
	a.Record("filter", st, 3*time.Millisecond).SetAttr("scanned", 200)
	got := a.Finish()
	if got == nil {
		t.Fatal("forced trace dropped")
	}
	if got.Slow {
		t.Fatal("fast trace marked slow")
	}
	sp, ok := got.Span("filter")
	if !ok || sp.Dur != 3*time.Millisecond {
		t.Fatalf("filter span = %+v ok=%v", sp, ok)
	}
	if len(sp.Attrs) != 1 || sp.Attrs[0] != (Attr{Key: "scanned", Val: 200}) {
		t.Fatalf("attrs = %+v", sp.Attrs)
	}
	if len(tr.Recent()) != 1 {
		t.Fatalf("recent = %d traces", len(tr.Recent()))
	}
	if len(tr.Slow()) != 0 {
		t.Fatal("fast trace in slow log")
	}
	if tr.Find(got.ID) == nil {
		t.Fatal("Find missed retained trace")
	}
	// Finish disarms: further records and a second Finish are inert.
	a.Record("late", time.Now(), time.Second)
	if a.Finish() != nil {
		t.Fatal("double Finish retained")
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Params{SampleEvery: 4, SlowThreshold: time.Hour}, nil)
	var a Active
	for i := 0; i < 16; i++ {
		tr.Begin(&a, "q")
		a.Finish()
	}
	if got := len(tr.Recent()); got != 4 {
		t.Fatalf("sampled %d of 16 with SampleEvery=4", got)
	}
}

func TestSlowThresholdAndMarkSlow(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := New(Params{SampleEvery: -1, SlowThreshold: time.Nanosecond}, reg)
	var a Active
	tr.Begin(&a, "q")
	time.Sleep(time.Millisecond)
	got := a.Finish()
	if got == nil || !got.Slow {
		t.Fatalf("over-threshold trace not in slow log: %+v", got)
	}
	if len(tr.Slow()) != 1 {
		t.Fatalf("slow log has %d traces", len(tr.Slow()))
	}

	// MarkSlow forces the slow log regardless of duration (budget-degraded).
	tr2 := New(Params{SampleEvery: -1, SlowThreshold: time.Hour}, nil)
	tr2.Begin(&a, "q")
	a.MarkSlow()
	got = a.Finish()
	if got == nil || !got.Slow {
		t.Fatal("MarkSlow trace not retained as slow")
	}
	if reg.Value("ferret_traces_slow_total") != 1 {
		t.Fatalf("slow counter = %g", reg.Value("ferret_traces_slow_total"))
	}
	if reg.Value("ferret_traces_finished_total") != 1 {
		t.Fatalf("finished counter = %g", reg.Value("ferret_traces_finished_total"))
	}
}

func TestSharedRefLinksTraces(t *testing.T) {
	tr := New(Params{SampleEvery: 1}, nil)
	scan := NewSpanID()
	var as [3]Active
	st := time.Now()
	for i := range as {
		tr.Begin(&as[i], "q")
		as[i].RecordShared("scan", scan, st, time.Millisecond)
	}
	var refs []SpanID
	for i := range as {
		got := as[i].Finish()
		if got == nil {
			t.Fatal("trace dropped with SampleEvery=1")
		}
		sp, ok := got.Span("scan")
		if !ok {
			t.Fatal("scan span missing")
		}
		refs = append(refs, sp.Ref)
	}
	for _, r := range refs {
		if r != scan {
			t.Fatalf("refs %v not all equal to %v", refs, scan)
		}
	}
}

func TestSpanOverflowCounted(t *testing.T) {
	tr := New(Params{SampleEvery: 1}, nil)
	var a Active
	tr.Begin(&a, "q")
	for i := 0; i < MaxSpans+5; i++ {
		a.Record("s", time.Now(), 0)
	}
	got := a.Finish()
	if got == nil {
		t.Fatal("trace dropped")
	}
	if len(got.Spans) != MaxSpans {
		t.Fatalf("spans = %d", len(got.Spans))
	}
	// Root occupies a slot, so 6 of the 29 non-root records were dropped.
	if got.Dropped != 6 {
		t.Fatalf("dropped = %d", got.Dropped)
	}
	if !strings.Contains(got.Compact(), "spans dropped") {
		t.Fatalf("Compact misses drop note: %s", got.Compact())
	}
}

func TestStagesAggregates(t *testing.T) {
	tr := New(Params{SampleEvery: 1}, nil)
	var a Active
	tr.Begin(&a, "q")
	st := time.Now()
	a.Record("rank", st, 2*time.Millisecond)
	a.Record("filter", st, time.Millisecond)
	a.Record("rank", st, 3*time.Millisecond) // fan-out: same stage twice
	stages := a.Stages()
	if len(stages) != 3 {
		t.Fatalf("stages = %+v", stages)
	}
	if stages[0] != (Stage{Name: "rank", Dur: 5 * time.Millisecond}) {
		t.Fatalf("rank stage = %+v", stages[0])
	}
	if stages[1] != (Stage{Name: "filter", Dur: time.Millisecond}) {
		t.Fatalf("filter stage = %+v", stages[1])
	}
	if stages[2].Name != "total" || stages[2].Dur <= 0 {
		t.Fatalf("total stage = %+v", stages[2])
	}
	s := FormatStages(stages)
	if !strings.Contains(s, "rank 5ms") || !strings.Contains(s, "(total ") {
		t.Fatalf("FormatStages = %q", s)
	}
	a.Finish()
}

func TestStartSpanEnd(t *testing.T) {
	tr := New(Params{SampleEvery: 1}, nil)
	var a Active
	tr.Begin(&a, "q")
	sp := a.StartSpan("write")
	if sp.ID() == 0 {
		t.Fatal("span has no id")
	}
	time.Sleep(time.Millisecond)
	sp.End()
	got := a.Finish()
	sd, ok := got.Span("write")
	if !ok || sd.Dur <= 0 {
		t.Fatalf("write span = %+v ok=%v", sd, ok)
	}
	if sd.Parent != got.Spans[0].ID {
		t.Fatal("span not parented on root")
	}
}

func TestRingWraps(t *testing.T) {
	tr := New(Params{SampleEvery: 1, RecentSize: 4}, nil)
	var a Active
	var last TraceID
	for i := 0; i < 10; i++ {
		tr.Begin(&a, "q")
		last = a.ID()
		a.Finish()
	}
	rec := tr.Recent()
	if len(rec) != 4 {
		t.Fatalf("ring holds %d", len(rec))
	}
	if rec[0].ID != last {
		t.Fatal("newest trace not first")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Params{SampleEvery: 1}, nil)
	var a Active
	tr.Begin(&a, "q")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a.Record("stage", time.Now(), time.Microsecond).SetAttr("i", int64(i))
				a.Elapsed()
				a.Stages()
			}
		}()
	}
	wg.Wait()
	if got := a.Finish(); got == nil {
		t.Fatal("trace dropped")
	}
}

func TestRecordAllocFree(t *testing.T) {
	tr := New(Params{SampleEvery: -1, SlowThreshold: -1}, nil)
	var a Active
	st := time.Now()
	allocs := testing.AllocsPerRun(100, func() {
		tr.Begin(&a, "q")
		a.Record("filter", st, time.Millisecond).SetAttr("scanned", 10)
		a.RecordShared("scan", 7, st, time.Millisecond)
		sp := a.StartSpan("write")
		sp.End()
		a.Finish()
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v/op", allocs)
	}
}

func TestHandler(t *testing.T) {
	tr := New(Params{SampleEvery: 1, SlowThreshold: time.Nanosecond}, nil)
	var a Active
	tr.Begin(&a, "search")
	time.Sleep(time.Millisecond)
	a.Record("rank", time.Now(), time.Millisecond)
	retained := a.Finish()
	if retained == nil {
		t.Fatal("setup trace dropped")
	}

	srv := httptest.NewServer(Handler(tr))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), sb.String()
	}

	code, ct, body := get("/")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("code=%d ct=%q", code, ct)
	}
	var decoded struct {
		Recent []json.RawMessage `json:"recent"`
		Slow   []json.RawMessage `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if len(decoded.Recent) != 1 || len(decoded.Slow) != 1 {
		t.Fatalf("recent=%d slow=%d", len(decoded.Recent), len(decoded.Slow))
	}

	code, _, body = get("/?slow=1")
	if code != 200 || strings.Contains(body, `"recent"`) {
		t.Fatalf("slow=1 returned recent traces: %s", body)
	}

	code, _, body = get("/?id=" + retained.ID.String())
	if code != 200 || !strings.Contains(body, retained.ID.String()) {
		t.Fatalf("by-id lookup: code=%d body=%s", code, body)
	}
	if code, _, _ = get("/?id=0000000000000001"); code != 404 {
		t.Fatalf("missing id gave %d", code)
	}
	if code, _, _ = get("/?id=notahexid"); code != 400 {
		t.Fatalf("bad id gave %d", code)
	}

	if code, _, _ = get("/?n=0"); code != 200 {
		t.Fatal("n=0 rejected")
	}

	// Disabled tracer → 503.
	srv2 := httptest.NewServer(Handler(nil))
	defer srv2.Close()
	resp, err := http.Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil tracer gave %d", resp.StatusCode)
	}
}

func TestParamDefaults(t *testing.T) {
	p := Params{}
	if p.sampleEvery() != 64 || p.slowThreshold() != 100*time.Millisecond {
		t.Fatalf("defaults: every=%d slow=%v", p.sampleEvery(), p.slowThreshold())
	}
	if p.recentSize() != 64 || p.slowSize() != 32 {
		t.Fatalf("ring defaults: %d/%d", p.recentSize(), p.slowSize())
	}
	p = Params{SampleEvery: -1, SlowThreshold: -1}
	if p.sampleEvery() != 0 || p.slowThreshold() != 0 {
		t.Fatal("negatives should disable")
	}
}
