package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves retained traces as JSON at its mount point (/debug/traces):
//
//	?slow=1   only the slow-query log
//	?id=<id>  one trace by hex ID (404 if not retained)
//	?n=<k>    cap the number of traces returned
//
// A nil-tracer handler answers 503 so probes can tell "tracing off" from
// "no traces yet".
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")

		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := ParseTraceID(idStr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			tr := t.Find(id)
			if tr == nil {
				http.Error(w, "trace not retained", http.StatusNotFound)
				return
			}
			enc.Encode(tr)
			return
		}

		slowOnly := false
		if v := r.URL.Query().Get("slow"); v == "1" || v == "true" {
			slowOnly = true
		}
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			if k, err := strconv.Atoi(v); err == nil && k > 0 {
				n = k
			}
		}

		resp := struct {
			Recent []*Trace `json:"recent,omitempty"`
			Slow   []*Trace `json:"slow"`
		}{Slow: clip(t.Slow(), n)}
		if !slowOnly {
			resp.Recent = clip(t.Recent(), n)
		}
		enc.Encode(resp)
	})
}

func clip(ts []*Trace, n int) []*Trace {
	if n > 0 && len(ts) > n {
		return ts[:n]
	}
	return ts
}
