// Package trace is the toolkit's zero-dependency span tracer: per-query
// pipeline traces with sampling retention and an always-on slow-query log.
//
// Aggregate metrics (package telemetry) answer "how slow are queries?";
// traces answer "why was *this* query slow?" — since the shared-scan
// scheduler landed, a query's latency is a function of which coalesced
// batch it joined and how long it waited in the queue, which no histogram
// can attribute. A trace is a bounded set of spans (name, start offset,
// duration, parent, integer attrs) recorded while one query runs.
//
// The design splits *recording* from *retention* so tracing can stay
// always-on without perturbing the measured system:
//
//   - Recording is allocation-free. An Active is a fixed-capacity span
//     buffer that callers embed by value inside state they already
//     allocate or pool per query (the scheduler's batchReq, the engine's
//     pooled queryScratch, the server's per-connection state). Starting a
//     span, setting an attr and ending it are a mutex-guarded array write
//     each — no heap allocation, verified by TestFilterPathAllocs and
//     BenchmarkQueryPipelineTraced.
//   - Retention is decided at Finish: a trace is snapshotted (the only
//     allocation) and published only when it was explicitly requested
//     (Force), head-sampled (every Nth finished trace), or slower than the
//     tail-latency threshold — the slow-query log. Everything else
//     vanishes with zero residue.
//
// Completed traces land in lock-free fixed-size rings (recent + slow),
// exposed over the TRACE protocol command and the /debug/traces JSON
// endpoint (see Handler).
//
// Spans in different traces can be correlated: the scheduler records the
// shared arena scan once per coalesced query with the same Ref span ID, so
// all Q traces of one batch provably point at the same physical scan.
package trace

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ferret/internal/telemetry"
)

// TraceID identifies one trace; SpanID one span. Both render as 16-hex
// tokens on the wire and in JSON (uint64 values are not safe as JSON
// numbers).
type (
	TraceID uint64
	SpanID  uint64
)

func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }
func (id SpanID) String() string  { return fmt.Sprintf("%016x", uint64(id)) }

// ParseTraceID parses the wire form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad trace id %q", s)
	}
	return TraceID(v), nil
}

// MarshalJSON renders IDs as quoted hex strings.
func (id TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + id.String() + `"`), nil }
func (id SpanID) MarshalJSON() ([]byte, error)  { return []byte(`"` + id.String() + `"`), nil }

// idSeq is the process-wide ID sequence. Seeded from the wall clock and
// stepped by a 64-bit golden-ratio increment, successive IDs are unique per
// process and well spread without per-ID entropy costs.
var idSeq atomic.Uint64

const idGamma = 0x9E3779B97F4A7C15

func init() { idSeq.Store(uint64(time.Now().UnixNano())) }

func nextID() uint64 {
	v := idSeq.Add(idGamma)
	if v == 0 { // 0 means "unset" everywhere
		v = idSeq.Add(idGamma)
	}
	return v
}

// NewTraceID allocates a fresh trace ID.
func NewTraceID() TraceID { return TraceID(nextID()) }

// NewSpanID allocates a fresh span ID — used by the scheduler to mint the
// shared scan span's identity once per batch and link it from every
// coalesced query's trace (SpanData.Ref).
func NewSpanID() SpanID { return SpanID(nextID()) }

// Capacity limits. MaxSpans bounds one trace's recording buffer (a large
// explicit batch overflows it; overflow is counted, never reallocated) and
// maxAttrs bounds per-span attributes.
const (
	MaxSpans = 24
	maxAttrs = 4
)

// Attr is one integer span attribute (EMD evaluations, pruned candidates,
// batch size, ...). Integer-only keeps recording allocation-free.
type Attr struct {
	Key string `json:"k"`
	Val int64  `json:"v"`
}

// Params configures a Tracer. The zero value is an enabled tracer with
// defaults; Disable turns tracing off entirely.
type Params struct {
	// Disable turns the tracer off: New returns nil and every recording
	// call no-ops.
	Disable bool
	// SampleEvery retains every Nth finished trace in the recent ring
	// (head sampling). 0 means 64; negative disables head sampling —
	// forced and slow traces are still retained.
	SampleEvery int
	// SlowThreshold force-retains any trace at least this slow into the
	// slow-query log. 0 means 100ms; negative disables the log. Budget-
	// degraded queries are always treated as slow regardless of duration.
	SlowThreshold time.Duration
	// RecentSize and SlowSize are the ring capacities (0 = 64 and 32).
	RecentSize int
	SlowSize   int
}

func (p Params) sampleEvery() uint64 {
	switch {
	case p.SampleEvery == 0:
		return 64
	case p.SampleEvery < 0:
		return 0
	default:
		return uint64(p.SampleEvery)
	}
}

func (p Params) slowThreshold() time.Duration {
	switch {
	case p.SlowThreshold == 0:
		return 100 * time.Millisecond
	case p.SlowThreshold < 0:
		return 0
	default:
		return p.SlowThreshold
	}
}

func (p Params) recentSize() int {
	if p.RecentSize <= 0 {
		return 64
	}
	return p.RecentSize
}

func (p Params) slowSize() int {
	if p.SlowSize <= 0 {
		return 32
	}
	return p.SlowSize
}

// Tracer owns the retention policy and the completed-trace rings. A nil
// Tracer is valid and records nothing.
type Tracer struct {
	sampleEvery uint64        // head sampling period; 0 = off
	slow        time.Duration // tail-latency trigger; 0 = off

	finSeq atomic.Uint64 // finished traces, for head sampling

	recent ring
	slowR  ring

	cFinished *telemetry.Counter
	cRetained *telemetry.Counter
	cSlow     *telemetry.Counter
	cDropped  *telemetry.Counter
}

// New builds a Tracer, registering its accounting counters in reg (nil reg
// skips registration). Returns nil when p.Disable is set; a nil Tracer is
// safe to use everywhere.
func New(p Params, reg *telemetry.Registry) *Tracer {
	if p.Disable {
		return nil
	}
	t := &Tracer{
		sampleEvery: p.sampleEvery(),
		slow:        p.slowThreshold(),
	}
	t.recent.init(p.recentSize())
	t.slowR.init(p.slowSize())
	if reg != nil {
		t.cFinished = reg.Counter("ferret_traces_finished_total", "Query traces finished (retained or not).")
		t.cRetained = reg.Counter("ferret_traces_retained_total", "Query traces retained in the recent ring.")
		t.cSlow = reg.Counter("ferret_traces_slow_total", "Query traces retained in the slow-query log.")
		t.cDropped = reg.Counter("ferret_trace_spans_dropped_total", "Spans dropped because a trace's buffer was full.")
	}
	return t
}

// SlowThreshold reports the tail-latency trigger (0 = disabled).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// ring is a lock-free fixed-size ring of completed traces: writers claim a
// slot with one atomic add and publish with one atomic pointer store;
// readers snapshot without blocking writers.
type ring struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
}

func (r *ring) init(n int) { r.slots = make([]atomic.Pointer[Trace], n) }

func (r *ring) add(tr *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(tr)
}

// snapshot returns the retained traces, newest first. Claim and publish are
// two separate atomics, so a reader racing a writer may briefly see the
// slot's previous occupant — fine for a diagnostic surface.
func (r *ring) snapshot() []*Trace {
	n := len(r.slots)
	out := make([]*Trace, 0, n)
	head := r.next.Load()
	for k := 0; k < n; k++ {
		i := (head + uint64(n) - 1 - uint64(k)) % uint64(n)
		if tr := r.slots[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// spanRec is one recorded span inside an Active's fixed buffer.
type spanRec struct {
	id     SpanID
	parent SpanID
	ref    SpanID
	name   string
	start  time.Duration // offset from trace start
	dur    time.Duration
	attrs  [maxAttrs]Attr
	nattrs int8
	open   bool
}

// Active is one query's in-flight trace recording state. Embed it by value
// in per-query state you already allocate (a request struct, pooled
// scratch, per-connection state): arming, recording and finishing never
// allocate. The zero value is disarmed and every method no-ops on it; all
// methods are also safe on a nil receiver, so "no trace" needs no branches
// at call sites. An Active may be re-armed after Finish (pooled reuse).
//
// Recording is mutex-guarded: the scheduler's leader, pool workers and the
// serving goroutine may record into one query's Active concurrently.
type Active struct {
	mu      sync.Mutex
	t       *Tracer
	id      TraceID
	start   time.Time
	spans   [MaxSpans]spanRec // spans[0] is the root
	n       int32
	dropped int32
	forced  bool // retain regardless of sampling (client requested)
	slow    bool // treat as slow regardless of duration (budget-degraded)
	armed   bool
}

// Begin arms a for a new trace rooted at root with a fresh ID. It reports
// whether recording is on (false for a nil/disabled tracer).
func (t *Tracer) Begin(a *Active, root string) bool {
	return t.BeginWith(a, root, 0, false)
}

// BeginWith is Begin with an explicit trace ID (0 allocates one) and a
// forced-retention flag — the wire propagation entry point: a client that
// passed trace=<id> gets its trace retained regardless of sampling.
func (t *Tracer) BeginWith(a *Active, root string, id TraceID, force bool) bool {
	if t == nil || a == nil {
		return false
	}
	if id == 0 {
		id = NewTraceID()
	}
	a.mu.Lock()
	a.t = t
	a.id = id
	a.start = time.Now()
	a.n = 1
	a.dropped = 0
	a.forced = force
	a.slow = false
	a.armed = true
	a.spans[0] = spanRec{id: SpanID(nextID()), name: root, open: true}
	a.mu.Unlock()
	return true
}

// Armed reports whether a is currently recording.
func (a *Active) Armed() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.armed
}

// ID returns the trace ID (0 when disarmed).
func (a *Active) ID() TraceID {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.armed {
		return 0
	}
	return a.id
}

// Elapsed returns the time since the trace began.
func (a *Active) Elapsed() time.Duration {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.armed {
		return 0
	}
	return time.Since(a.start)
}

// Force marks the trace for unconditional retention at Finish.
func (a *Active) Force() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.forced = true
	a.mu.Unlock()
}

// MarkSlow marks the trace as slow regardless of its duration — the hook
// for budget-degraded queries, which must always reach the slow-query log.
func (a *Active) MarkSlow() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.slow = a.armed
	a.mu.Unlock()
}

// alloc claims the next span slot under a.mu; returns -1 when disarmed or
// full (the drop is counted).
func (a *Active) alloc() int32 {
	if !a.armed {
		return -1
	}
	if int(a.n) >= MaxSpans {
		a.dropped++
		return -1
	}
	i := a.n
	a.n++
	return i
}

// Span is a value handle onto one recorded span. The zero Span is a no-op,
// so recording calls need no nil checks.
type Span struct {
	a *Active
	i int32
}

// StartSpan opens a span named name, parented on the root, starting now.
// Close it with End.
//ferret:noalloc
func (a *Active) StartSpan(name string) Span {
	if a == nil {
		return Span{}
	}
	a.mu.Lock()
	i := a.alloc()
	if i < 0 {
		a.mu.Unlock()
		return Span{}
	}
	a.spans[i] = spanRec{
		id:     SpanID(nextID()),
		parent: a.spans[0].id,
		name:   name,
		start:  time.Since(a.start),
		open:   true,
	}
	a.mu.Unlock()
	return Span{a: a, i: i}
}

// Record adds a completed span from an already-measured interval — the
// common form for stages that are timed anyway for histograms.
//ferret:noalloc
func (a *Active) Record(name string, start time.Time, d time.Duration) Span {
	return a.record(name, 0, start, d)
}

// RecordShared is Record carrying a Ref span ID: the span stands for work
// physically shared with other traces (the coalesced arena scan), and every
// participating trace records it with the same ref, linking them.
//ferret:noalloc
func (a *Active) RecordShared(name string, ref SpanID, start time.Time, d time.Duration) Span {
	return a.record(name, ref, start, d)
}

//ferret:noalloc
func (a *Active) record(name string, ref SpanID, start time.Time, d time.Duration) Span {
	if a == nil {
		return Span{}
	}
	a.mu.Lock()
	i := a.alloc()
	if i < 0 {
		a.mu.Unlock()
		return Span{}
	}
	off := start.Sub(a.start)
	if off < 0 {
		off = 0
	}
	a.spans[i] = spanRec{
		id:     SpanID(nextID()),
		parent: a.spans[0].id,
		ref:    ref,
		name:   name,
		start:  off,
		dur:    d,
	}
	a.mu.Unlock()
	return Span{a: a, i: i}
}

// Root returns a handle onto the root span (for trace-level attrs).
func (a *Active) Root() Span {
	if a == nil {
		return Span{}
	}
	a.mu.Lock()
	armed := a.armed
	a.mu.Unlock()
	if !armed {
		return Span{}
	}
	return Span{a: a, i: 0}
}

// ID returns the span's ID (0 for a no-op handle).
func (s Span) ID() SpanID {
	if s.a == nil {
		return 0
	}
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	return s.a.spans[s.i].id
}

// SetAttr attaches an integer attribute; chainable. Attrs beyond the
// per-span capacity are dropped silently.
//ferret:noalloc
func (s Span) SetAttr(key string, v int64) Span {
	if s.a == nil {
		return s
	}
	s.a.mu.Lock()
	sp := &s.a.spans[s.i]
	if s.a.armed && int(sp.nattrs) < maxAttrs {
		sp.attrs[sp.nattrs] = Attr{Key: key, Val: v}
		sp.nattrs++
	}
	s.a.mu.Unlock()
	return s
}

// End closes a span opened with StartSpan, fixing its duration.
//ferret:noalloc
func (s Span) End() {
	if s.a == nil {
		return
	}
	s.a.mu.Lock()
	sp := &s.a.spans[s.i]
	if s.a.armed && sp.open {
		sp.dur = time.Since(s.a.start) - sp.start
		sp.open = false
	}
	s.a.mu.Unlock()
}

// Stage is one aggregated per-stage timing, the payload of the wire-level
// stage breakdown returned to clients that requested a trace.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Stages sums span durations by name in first-appearance order (the root
// span is reported as "total", using the elapsed time so far). It
// allocates; call it only for traced responses.
func (a *Active) Stages() []Stage {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.armed {
		return nil
	}
	out := make([]Stage, 0, int(a.n))
	for i := int32(1); i < a.n; i++ {
		sp := &a.spans[i]
		found := false
		for j := range out {
			if out[j].Name == sp.name {
				out[j].Dur += sp.dur
				found = true
				break
			}
		}
		if !found {
			out = append(out, Stage{Name: sp.name, Dur: sp.dur})
		}
	}
	out = append(out, Stage{Name: "total", Dur: time.Since(a.start)})
	return out
}

// Finish closes the trace and applies the retention policy: the trace is
// snapshotted and published iff it was forced, head-sampled, or slow
// (threshold or MarkSlow). Returns the retained snapshot or nil. Finish
// disarms a; later recording calls no-op until the next Begin. Safe on a
// nil, zero, or already-finished Active.
func (a *Active) Finish() *Trace {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.armed {
		return nil
	}
	a.armed = false
	t := a.t
	dur := time.Since(a.start)
	a.spans[0].dur = dur
	a.spans[0].open = false
	if t.cFinished != nil {
		t.cFinished.Inc()
	}
	if a.dropped > 0 && t.cDropped != nil {
		t.cDropped.Add(int(a.dropped))
	}

	slow := a.slow || (t.slow > 0 && dur >= t.slow)
	sampled := t.sampleEvery > 0 && t.finSeq.Add(1)%t.sampleEvery == 0
	if !a.forced && !sampled && !slow {
		return nil
	}

	tr := &Trace{
		ID:      a.id,
		Root:    a.spans[0].name,
		Start:   a.start,
		Dur:     dur,
		Slow:    slow,
		Forced:  a.forced,
		Dropped: int(a.dropped),
		Spans:   make([]SpanData, a.n),
	}
	for i := int32(0); i < a.n; i++ {
		sp := &a.spans[i]
		sd := SpanData{
			ID:     sp.id,
			Parent: sp.parent,
			Ref:    sp.ref,
			Name:   sp.name,
			Start:  sp.start,
			Dur:    sp.dur,
		}
		if sp.nattrs > 0 {
			sd.Attrs = make([]Attr, sp.nattrs)
			copy(sd.Attrs, sp.attrs[:sp.nattrs])
		}
		tr.Spans[i] = sd
	}
	t.recent.add(tr)
	if t.cRetained != nil {
		t.cRetained.Inc()
	}
	if slow {
		t.slowR.add(tr)
		if t.cSlow != nil {
			t.cSlow.Inc()
		}
	}
	return tr
}

// Trace is a retained, immutable snapshot of one finished trace.
type Trace struct {
	ID      TraceID       `json:"id"`
	Root    string        `json:"root"`
	Start   time.Time     `json:"start"`
	Dur     time.Duration `json:"duration_ns"`
	Slow    bool          `json:"slow,omitempty"`
	Forced  bool          `json:"forced,omitempty"`
	Dropped int           `json:"dropped_spans,omitempty"`
	Spans   []SpanData    `json:"spans"`
}

// SpanData is one span of a retained trace.
type SpanData struct {
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Ref    SpanID        `json:"ref,omitempty"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"duration_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Span returns the first span with the given name, if any.
func (tr *Trace) Span(name string) (SpanData, bool) {
	for _, sp := range tr.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return SpanData{}, false
}

// Compact renders the trace as one protocol-friendly line:
//
//	<id> <root> <dur> [slow] [forced] | <span> <dur> [ref=<id>] [k=v ...] | ...
func (tr *Trace) Compact() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s %s", tr.ID, tr.Root, tr.Dur.Round(time.Microsecond))
	if tr.Slow {
		sb.WriteString(" slow")
	}
	if tr.Forced {
		sb.WriteString(" forced")
	}
	for _, sp := range tr.Spans[1:] {
		fmt.Fprintf(&sb, " | %s %s", sp.Name, sp.Dur.Round(time.Microsecond))
		if sp.Ref != 0 {
			fmt.Fprintf(&sb, " ref=%s", sp.Ref)
		}
		for _, at := range sp.Attrs {
			fmt.Fprintf(&sb, " %s=%d", at.Key, at.Val)
		}
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(&sb, " | +%d spans dropped", tr.Dropped)
	}
	return sb.String()
}

// Recent returns retained traces, newest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	return t.recent.snapshot()
}

// Slow returns the slow-query log, newest first.
func (t *Tracer) Slow() []*Trace {
	if t == nil {
		return nil
	}
	return t.slowR.snapshot()
}

// Find looks a retained trace up by ID (slow ring first: slow traces
// outlive the recent ring's churn).
func (t *Tracer) Find(id TraceID) *Trace {
	if t == nil {
		return nil
	}
	for _, tr := range t.slowR.snapshot() {
		if tr.ID == id {
			return tr
		}
	}
	for _, tr := range t.recent.snapshot() {
		if tr.ID == id {
			return tr
		}
	}
	return nil
}

// FormatStages renders aggregated stage timings for human consumption:
// "parse 12µs → queue 340µs → scan 1.1ms → rank 420µs (total 1.9ms)".
func FormatStages(stages []Stage) string {
	var parts []string
	total := ""
	for _, st := range stages {
		if st.Name == "total" {
			total = st.Dur.Round(time.Microsecond).String()
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %s", st.Name, st.Dur.Round(time.Microsecond)))
	}
	s := strings.Join(parts, " → ")
	if total != "" {
		if s != "" {
			s += " "
		}
		s += "(total " + total + ")"
	}
	return s
}
