package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testLogger(buf *bytes.Buffer, level Level) *Logger {
	l := NewLogger(buf, level)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 10, 30, 0, 123e6, time.UTC) }
	return l
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, LevelInfo).With("kvstore")
	l.Info("wal replayed", "records", 12, "path", "/tmp/a b/wal.log", "err", errors.New("boom=1"))
	got := buf.String()
	want := `ts=2026-08-05T10:30:00.123Z level=info component=kvstore msg="wal replayed" records=12 path="/tmp/a b/wal.log" err="boom=1"` + "\n"
	if got != want {
		t.Fatalf("log line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, LevelWarn)
	l.Debug("nope")
	l.Info("nope")
	l.Warn("yes")
	l.Error("also")
	out := buf.String()
	if strings.Contains(out, "nope") {
		t.Fatalf("suppressed levels leaked: %q", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Fatalf("missing enabled levels: %q", out)
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("SetLevel did not take effect")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v") // must not panic
	if l.With("sub") != nil {
		t.Fatal("nil logger With must stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger must be disabled")
	}
}

func TestLoggerOddKeyValues(t *testing.T) {
	var buf bytes.Buffer
	testLogger(&buf, LevelInfo).Info("odd", "lonely")
	if !strings.Contains(buf.String(), "!MISSING=lonely") {
		t.Fatalf("odd kv not flagged: %q", buf.String())
	}
}

func TestLoggerConcurrentLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	l := testLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := l.With("worker")
			for i := 0; i < 200; i++ {
				sub.Info("tick", "w", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("interleaved/corrupt line %q", line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "": LevelInfo, "Info": LevelInfo, "WARN": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level must error")
	}
}
