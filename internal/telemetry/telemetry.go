// Package telemetry provides the toolkit's runtime observability layer:
// lock-cheap counters, gauges and fixed-bucket latency histograms backed by
// atomics, a metric registry with Prometheus-style text exposition and
// expvar-style JSON, a structured leveled key=value logger, and HTTP debug
// handlers (/metrics, /debug/vars, /debug/pprof/).
//
// The paper's evaluation (§6) attributes query time to the pipeline stages
// — sketch construction, filtering, ranking — so the engine and server
// record per-stage timings and pipeline counters here. Everything is
// stdlib-only and safe under the engine's parallel scan paths: a metric
// update is one or two atomic operations, never a mutex in the hot path.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (events, bytes, evaluations).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n is clamped at zero: counters never decrease).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value (live objects, in-flight queries).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// metric is one registered series: a base name plus an optional label set.
type metric struct {
	name   string // base metric name, e.g. ferret_query_stage_seconds
	labels string // rendered label pairs, e.g. `stage="filter"` ("" = none)
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// series is the full identity: name{labels}.
func (m *metric) series() string {
	if m.labels == "" {
		return m.name
	}
	return m.name + "{" + m.labels + "}"
}

// flatName is a protocol/JSON-safe identity: the base name with label
// values appended with underscores (ferret_query_stage_seconds_filter).
func (m *metric) flatName() string {
	if m.labels == "" {
		return m.name
	}
	flat := m.name
	for _, pair := range strings.Split(m.labels, ",") {
		if eq := strings.IndexByte(pair, '='); eq >= 0 {
			flat += "_" + sanitize(strings.Trim(pair[eq+1:], `"`))
		}
	}
	return flat
}

func sanitize(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// Registry holds named metrics. Registration is get-or-create: asking for
// the same name (and labels) twice returns the same metric, so components
// that may be constructed more than once over a shared registry (servers,
// engines) do not collide. Registering the same series as a different kind
// panics — that is always a programming error.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// renderLabels turns variadic k, v pairs into `k="v",k2="v2"`.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	var sb strings.Builder
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", labels[i], labels[i+1])
	}
	return sb.String()
}

func (r *Registry) lookup(name, help string, kind metricKind, labels []string) *metric {
	rendered := renderLabels(labels)
	key := name + "{" + rendered + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %s, requested %s", key, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: rendered, help: help, kind: kind}
	r.metrics[key] = m
	return m
}

// Counter returns the counter registered under name (and optional k, v
// label pairs), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	m := r.lookup(name, help, kindCounter, labels)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	m := r.lookup(name, help, kindGauge, labels)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (nil = DefTimeBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	m := r.lookup(name, help, kindHistogram, labels)
	if m.hist == nil {
		m.hist = NewHistogram(buckets)
	}
	return m.hist
}

// snapshot returns the registered metrics sorted by base name then labels —
// the deterministic exposition order.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Each visits every registered series as flat name/value pairs, in sorted
// order. Histograms contribute <name>_count, <name>_sum and estimated
// <name>_p50/_p90/_p99 values. This is the feed for the protocol TELEMETRY
// command and the /debug/vars JSON.
func (r *Registry) Each(fn func(name string, value float64)) {
	for _, m := range r.snapshot() {
		flat := m.flatName()
		switch m.kind {
		case kindCounter:
			fn(flat, float64(m.counter.Value()))
		case kindGauge:
			fn(flat, float64(m.gauge.Value()))
		case kindHistogram:
			s := m.hist.Snapshot()
			fn(flat+"_count", float64(s.Count))
			fn(flat+"_sum", s.Sum)
			fn(flat+"_p50", s.Quantile(0.50))
			fn(flat+"_p90", s.Quantile(0.90))
			fn(flat+"_p99", s.Quantile(0.99))
		}
	}
}

// Value returns the current value of a flat series name (counter or gauge),
// or 0 if absent — a convenience for tests and the STATS extension.
func (r *Registry) Value(flat string) float64 {
	var out float64
	r.Each(func(name string, v float64) {
		if name == flat {
			out = v
		}
	})
	return out
}

// WritePrometheus renders all metrics in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers per base name, cumulative
// le-labelled buckets plus _sum and _count for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	metrics := r.snapshot()
	var lastName string
	for _, m := range metrics {
		if m.name != lastName {
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
			lastName = m.name
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.series(), m.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", m.series(), m.gauge.Value()); err != nil {
				return err
			}
		case kindHistogram:
			if err := writePromHistogram(w, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m *metric) error {
	s := m.hist.Snapshot()
	withLe := func(le string) string {
		if m.labels == "" {
			return fmt.Sprintf("%s_bucket{le=%q}", m.name, le)
		}
		return fmt.Sprintf("%s_bucket{%s,le=%q}", m.name, m.labels, le)
	}
	cum := uint64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s %d\n", withLe(formatBound(bound)), cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	if _, err := fmt.Fprintf(w, "%s %d\n", withLe("+Inf"), cum); err != nil {
		return err
	}
	suffix := func(sfx string) string {
		if m.labels == "" {
			return m.name + sfx
		}
		return m.name + sfx + "{" + m.labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s %g\n", suffix("_sum"), s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", suffix("_count"), s.Count)
	return err
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}
