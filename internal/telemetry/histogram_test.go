package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1} // (-inf,1], (1,2], (2,4], (4,+inf)
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Fatalf("sum = %g", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1, 10})
	// 90 fast observations, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %g, want in (0, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %g, want in (0.1, 1]", p99)
	}
	// Overflow-bucket quantile reports the largest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(50)
	if q := h2.Quantile(0.5); q != 1 {
		t.Fatalf("overflow quantile = %g, want 1", q)
	}
	// Empty histogram.
	if q := NewHistogram(nil).Quantile(0.9); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramObserveSince(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveSince(time.Now().Add(-5 * time.Millisecond))
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); s < 0.004 || s > 5 {
		t.Fatalf("sum = %g, want around 5ms", s)
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram([]float64{1})
	const workers, ops = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*ops {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.5*workers*ops; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %g, want %g (CAS accumulation lost updates)", got, want)
	}
}
