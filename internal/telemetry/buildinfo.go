package telemetry

import (
	"runtime"
	"time"
)

// Version is the toolkit version reported by ferret_build_info. Bumped per
// release; binaries print it with -version style flags and scrapers join on
// it to correlate latency shifts with deploys.
const Version = "0.6.0"

// RegisterBuildInfo publishes the conventional build-identity series:
//
//	ferret_build_info{version="...",goversion="..."} 1
//	ferret_start_time_seconds <unix epoch>
//
// Both are idempotent on a shared registry: the info gauge is constant and
// the start time is set only once per process, so an engine reopened over
// the same registry keeps its original start time.
func RegisterBuildInfo(reg *Registry) {
	reg.Gauge("ferret_build_info",
		"Constant 1, labelled with the build's version and Go runtime.",
		"version", Version, "goversion", runtime.Version()).Set(1)
	start := reg.Gauge("ferret_start_time_seconds",
		"Unix time the process registered its metrics.")
	if start.Value() == 0 {
		start.Set(time.Now().Unix())
	}
}
