package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefTimeBuckets are the default latency bucket upper bounds, in seconds:
// 1µs to 10s on a 1-2.5-5 grid — wide enough to separate a sketch scan
// (microseconds per object) from an EMD ranking pass (milliseconds) and a
// cold metadata fetch (tens of milliseconds and up).
var DefTimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// FineTimeBuckets resolve sub-millisecond latencies. The batched query
// path's p99 sits under 2ms, so the default 1-2.5-5 grid collapses it into
// two bins; this grid adds 1.5 and 4/6 steps through the µs–10ms decades
// (where queue waits and pipeline stages live) and then coarsens to the
// default grid above 10ms. Use for queue-wait, stage, and query histograms.
var FineTimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 1.5e-5, 2.5e-5, 4e-5, 6e-5,
	1e-4, 1.5e-4, 2.5e-4, 4e-4, 6e-4,
	1e-3, 1.5e-3, 2.5e-3, 4e-3, 6e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram safe for concurrent observation:
// each Observe is one atomic bucket increment, one atomic count increment
// and one CAS loop for the sum. Bucket bounds are immutable after creation,
// so readers never race with layout changes.
type Histogram struct {
	bounds []float64       // ascending upper bounds; implicit +Inf after
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds; nil or empty uses DefTimeBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefTimeBuckets
	}
	cp := append([]float64(nil), bounds...)
	sort.Float64s(cp)
	return &Histogram{bounds: cp, counts: make([]atomic.Uint64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Concurrent observations during the copy may make Count differ from the
// bucket total by a few in-flight observations; quantile extraction uses
// the bucket total so it is always internally consistent.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending (excluding +Inf)
	Counts []uint64  // per-bucket counts; last entry is the +Inf bucket
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket containing the target rank. Values in the overflow
// bucket report the largest finite bound. Returns 0 for an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range s.Counts {
		if float64(cum)+float64(c) < rank || c == 0 {
			cum += c
			continue
		}
		if i == len(s.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := (rank - float64(cum)) / float64(c)
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates the q-quantile of the live histogram.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }
