package telemetry

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel resolves a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("telemetry: unknown log level %q", s)
	}
}

// Logger is a structured, leveled key=value logger (stdlib only). One line
// per event:
//
//	ts=2026-08-05T10:30:00.123Z level=info component=ferretd msg="serving" addr=:7070
//
// Loggers derived with With share the sink, mutex and level, so a process
// configures the level once and every component follows. A nil *Logger is
// valid and discards everything, letting library code log unconditionally.
type Logger struct {
	mu        *sync.Mutex
	w         io.Writer
	level     *atomic.Int32
	component string
	now       func() time.Time // injectable for tests
}

// NewLogger creates a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{mu: &sync.Mutex{}, w: w, level: &atomic.Int32{}, now: time.Now}
	l.level.Store(int32(level))
	return l
}

// With returns a logger tagged with a component name, sharing this logger's
// sink and level.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	cp := *l
	if cp.component != "" {
		cp.component += "/" + component
	} else {
		cp.component = component
	}
	return &cp
}

// SetLevel changes the minimum level for this logger and all derived ones.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.level.Store(int32(level))
	}
}

// Enabled reports whether events at level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.level.Load()
}

// Debug logs at debug level; kv are alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Fatal logs at error level and exits the process — the structured
// replacement for log.Fatalf in the binaries.
func (l *Logger) Fatal(msg string, kv ...any) {
	if l == nil {
		fmt.Fprintf(os.Stderr, "fatal: %s\n", msg)
	} else {
		l.log(LevelError, msg, kv)
	}
	os.Exit(1)
}

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var sb strings.Builder
	sb.WriteString("ts=")
	sb.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteString(" level=")
	sb.WriteString(level.String())
	if l.component != "" {
		sb.WriteString(" component=")
		sb.WriteString(logValue(l.component))
	}
	sb.WriteString(" msg=")
	sb.WriteString(logValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		sb.WriteByte(' ')
		sb.WriteString(fmt.Sprint(kv[i]))
		sb.WriteByte('=')
		sb.WriteString(logValue(formatAny(kv[i+1])))
	}
	if len(kv)%2 != 0 {
		sb.WriteString(" !MISSING=")
		sb.WriteString(logValue(formatAny(kv[len(kv)-1])))
	}
	sb.WriteByte('\n')
	l.mu.Lock()
	_, _ = io.WriteString(l.w, sb.String())
	l.mu.Unlock()
}

func formatAny(v any) string {
	switch t := v.(type) {
	case error:
		return t.Error()
	case time.Duration:
		return t.String()
	case string:
		return t
	default:
		return fmt.Sprint(v)
	}
}

// logValue quotes a value when it contains characters that would break the
// key=value framing.
func logValue(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\"=\n\\") {
		return strconv.Quote(s)
	}
	return s
}
