// Package imagefeat is the image plug-in for the Ferret toolkit (paper
// §5.1): region-based segmentation and 14-dimensional per-region feature
// extraction for Region-Based Image Retrieval.
//
// Segmentation replaces the JSEG tool with a region-growing segmenter over
// color similarity followed by small-region merging. Each region is
// represented by a 14-d feature vector — 9 color moments (mean, standard
// deviation and skewness per RGB channel) and 5 bounding-box descriptors —
// and weighted by the square root of its size, as in the paper.
package imagefeat

import (
	"errors"
	"math"

	"ferret/internal/object"
)

// FeatureDim is the dimensionality of a region feature vector: 9 color
// moments + 5 bounding-box features.
const FeatureDim = 14

// RGB is a linear color sample with channels in [0, 1].
type RGB struct{ R, G, B float32 }

// Image is a simple row-major float RGB raster — the representation
// produced by the synthetic dataset generators and consumed by the
// segmenter.
type Image struct {
	W, H int
	Pix  []RGB // len W*H, row-major
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) RGB { return im.Pix[y*im.W+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, c RGB) { im.Pix[y*im.W+x] = c }

func colorDist(a, b RGB) float64 {
	dr := float64(a.R - b.R)
	dg := float64(a.G - b.G)
	db := float64(a.B - b.B)
	return math.Abs(dr) + math.Abs(dg) + math.Abs(db)
}

// Segmenter groups pixels into homogeneous color regions.
type Segmenter struct {
	// Tolerance is the maximum ℓ₁ color distance between a pixel and the
	// running region mean for the pixel to join the region. Default 0.25.
	Tolerance float64
	// MinRegionFrac merges regions smaller than this fraction of the image
	// into their most similar neighbor region. Default 0.005.
	MinRegionFrac float64
	// MaxRegions caps the number of regions by merging the smallest into
	// their most similar sibling. Default 16.
	MaxRegions int
}

func (s Segmenter) withDefaults() Segmenter {
	if s.Tolerance <= 0 {
		s.Tolerance = 0.25
	}
	if s.MinRegionFrac <= 0 {
		s.MinRegionFrac = 0.005
	}
	if s.MaxRegions <= 0 {
		s.MaxRegions = 16
	}
	return s
}

// Region is one segment of an image.
type Region struct {
	// Pixels is the region size in pixels.
	Pixels int
	// Mean color and higher moments per channel.
	Mean, Std, Skew [3]float64
	// Bounding box (inclusive) and centroid in pixel coordinates.
	MinX, MinY, MaxX, MaxY int
	CX, CY                 float64
}

// Segment labels the image's pixels into regions by region growing and
// returns the regions. The returned label map assigns each pixel its region
// index.
func (s Segmenter) Segment(im *Image) ([]Region, []int32) {
	p := s.withDefaults()
	n := im.W * im.H
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int
	var accs []regionAcc

	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		label := int32(len(accs))
		a := regionAcc{}
		mean := im.Pix[start]
		queue = queue[:0]
		queue = append(queue, start)
		labels[start] = label
		for len(queue) > 0 {
			idx := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			c := im.Pix[idx]
			a.count++
			a.sum[0] += float64(c.R)
			a.sum[1] += float64(c.G)
			a.sum[2] += float64(c.B)
			a.members = append(a.members, idx)
			mean = RGB{
				R: float32(a.sum[0] / float64(a.count)),
				G: float32(a.sum[1] / float64(a.count)),
				B: float32(a.sum[2] / float64(a.count)),
			}
			x, y := idx%im.W, idx/im.W
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= im.W || ny >= im.H {
					continue
				}
				nidx := ny*im.W + nx
				if labels[nidx] != -1 {
					continue
				}
				if colorDist(im.Pix[nidx], mean) <= p.Tolerance {
					labels[nidx] = label
					queue = append(queue, nidx)
				}
			}
		}
		accs = append(accs, a)
	}

	// Merge small regions into the most color-similar region, then cap the
	// region count.
	minPixels := int(p.MinRegionFrac * float64(n))
	merged := mergeSmall(im, accs, labels, minPixels, p.MaxRegions)
	return regionStats(im, merged, labels), labels
}

// regionAcc accumulates a growing region's pixels and color sums.
type regionAcc struct {
	count   int
	sum     [3]float64
	members []int
}

// mergeSmall folds regions below minPixels (and beyond maxRegions) into
// their most similar surviving region, rewriting labels. It returns the
// surviving accumulator list aligned with the rewritten labels.
func mergeSmall(im *Image, accs []regionAcc, labels []int32, minPixels, maxRegions int) []regionAcc {
	meanOf := func(a *regionAcc) [3]float64 {
		return [3]float64{a.sum[0] / float64(a.count), a.sum[1] / float64(a.count), a.sum[2] / float64(a.count)}
	}
	alive := make([]bool, len(accs))
	for i := range alive {
		alive[i] = true
	}
	// Repeatedly fold the smallest offending region into its most similar
	// surviving region.
	for {
		smallest, smallestCount := -1, 1<<62
		aliveCount := 0
		for i := range accs {
			if !alive[i] {
				continue
			}
			aliveCount++
			if accs[i].count < smallestCount {
				smallest, smallestCount = i, accs[i].count
			}
		}
		if aliveCount <= 1 {
			break
		}
		if smallestCount >= minPixels && aliveCount <= maxRegions {
			break
		}
		// Find the most similar other region by mean color.
		sm := meanOf(&accs[smallest])
		best, bestDist := -1, math.Inf(1)
		for i := range accs {
			if i == smallest || !alive[i] {
				continue
			}
			m := meanOf(&accs[i])
			d := math.Abs(m[0]-sm[0]) + math.Abs(m[1]-sm[1]) + math.Abs(m[2]-sm[2])
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			break
		}
		accs[best].count += accs[smallest].count
		for c := 0; c < 3; c++ {
			accs[best].sum[c] += accs[smallest].sum[c]
		}
		accs[best].members = append(accs[best].members, accs[smallest].members...)
		alive[smallest] = false
	}
	// Compact surviving regions and rewrite labels.
	var out []regionAcc
	remap := make([]int32, len(accs))
	for i := range accs {
		if alive[i] {
			remap[i] = int32(len(out))
			out = append(out, accs[i])
		}
	}
	for i := range accs {
		if !alive[i] {
			continue
		}
		for _, idx := range accs[i].members {
			labels[idx] = remap[i]
		}
	}
	return out
}

// regionStats computes per-region moments and bounding boxes.
func regionStats(im *Image, accs []regionAcc, labels []int32) []Region {
	regions := make([]Region, len(accs))
	for i := range regions {
		regions[i] = Region{MinX: im.W, MinY: im.H, MaxX: -1, MaxY: -1}
	}
	for ri := range accs {
		r := &regions[ri]
		a := &accs[ri]
		r.Pixels = a.count
		for c := 0; c < 3; c++ {
			r.Mean[c] = a.sum[c] / float64(a.count)
		}
		var sx, sy float64
		var m2, m3 [3]float64
		for _, idx := range a.members {
			x, y := idx%im.W, idx/im.W
			sx += float64(x)
			sy += float64(y)
			if x < r.MinX {
				r.MinX = x
			}
			if y < r.MinY {
				r.MinY = y
			}
			if x > r.MaxX {
				r.MaxX = x
			}
			if y > r.MaxY {
				r.MaxY = y
			}
			px := im.Pix[idx]
			ch := [3]float64{float64(px.R), float64(px.G), float64(px.B)}
			for c := 0; c < 3; c++ {
				d := ch[c] - r.Mean[c]
				m2[c] += d * d
				m3[c] += d * d * d
			}
		}
		r.CX = sx / float64(a.count)
		r.CY = sy / float64(a.count)
		for c := 0; c < 3; c++ {
			r.Std[c] = math.Sqrt(m2[c] / float64(a.count))
			r.Skew[c] = math.Cbrt(m3[c] / float64(a.count))
		}
	}
	return regions
}

// Feature converts a region into the paper's 14-d feature vector. The five
// bounding-box features are the normalized aspect ratio w/(w+h), the
// bounding-box size as a fraction of the image, the area ratio (region
// pixels / bbox pixels), and the normalized centroid coordinates. (The
// paper's raw aspect ratio w/h is unbounded; the normalized form carries
// the same information and keeps sketch bounds tight.)
func Feature(im *Image, r *Region) []float32 {
	v := make([]float32, 0, FeatureDim)
	for c := 0; c < 3; c++ {
		v = append(v, float32(r.Mean[c]), float32(r.Std[c]), float32(r.Skew[c]))
	}
	bw := float64(r.MaxX-r.MinX) + 1
	bh := float64(r.MaxY-r.MinY) + 1
	bboxPix := bw * bh
	v = append(v,
		float32(bw/(bw+bh)),
		float32(bboxPix/float64(im.W*im.H)),
		float32(float64(r.Pixels)/bboxPix),
		float32(r.CX/float64(im.W)),
		float32(r.CY/float64(im.H)),
	)
	return v
}

// Extractor is the image plug-in's segmentation-and-feature-extraction
// unit.
type Extractor struct {
	Seg Segmenter
}

// Extract converts an image into a Ferret object: one segment per region
// with weight proportional to the square root of the region size.
func (e *Extractor) Extract(key string, im *Image) (object.Object, error) {
	if im == nil || im.W == 0 || im.H == 0 {
		return object.Object{}, errors.New("imagefeat: empty image")
	}
	regions, _ := e.Seg.Segment(im)
	weights := make([]float32, len(regions))
	vecs := make([][]float32, len(regions))
	for i := range regions {
		weights[i] = float32(math.Sqrt(float64(regions[i].Pixels)))
		vecs[i] = Feature(im, &regions[i])
	}
	return object.New(key, weights, vecs)
}

// FeatureBounds returns per-dimension [min, max] bounds for sketch
// construction over image features.
func FeatureBounds() (min, max []float32) {
	min = make([]float32, FeatureDim)
	max = make([]float32, FeatureDim)
	for c := 0; c < 3; c++ {
		// mean ∈ [0,1], std ∈ [0,0.5], skew ∈ [-0.8, 0.8]
		min[c*3+0], max[c*3+0] = 0, 1
		min[c*3+1], max[c*3+1] = 0, 0.5
		min[c*3+2], max[c*3+2] = -0.8, 0.8
	}
	for i := 9; i < FeatureDim; i++ {
		min[i], max[i] = 0, 1
	}
	return min, max
}
