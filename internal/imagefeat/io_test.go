package imagefeat

import (
	"bytes"
	"image"
	"image/color"
	"math"
	"path/filepath"
	"testing"
)

func gradient(w, h int) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			im.Set(x, y, RGB{
				R: float32(x) / float32(w),
				G: float32(y) / float32(h),
				B: 0.25,
			})
		}
	}
	return im
}

func maxPixelDiff(a, b *Image) float64 {
	var m float64
	for i := range a.Pix {
		m = math.Max(m, math.Abs(float64(a.Pix[i].R-b.Pix[i].R)))
		m = math.Max(m, math.Abs(float64(a.Pix[i].G-b.Pix[i].G)))
		m = math.Max(m, math.Abs(float64(a.Pix[i].B-b.Pix[i].B)))
	}
	return m
}

func TestPPMRoundTrip(t *testing.T) {
	im := gradient(17, 9)
	var buf bytes.Buffer
	if err := im.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPPM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 17 || got.H != 9 {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	if d := maxPixelDiff(im, got); d > 1.0/254 {
		t.Fatalf("max pixel diff %g", d)
	}
}

func TestReadPPMErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("P5\n2 2\n255\n"),   // wrong magic
		[]byte("P6\n2 2\n65535\n"), // unsupported depth
		[]byte("P6\n2 2\n255\nxx"), // truncated pixels
		[]byte("P6\n-1 2\n255\n"),  // negative size
	}
	for i, data := range cases {
		if _, err := ReadPPM(bytes.NewReader(data)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPNGFileRoundTrip(t *testing.T) {
	im := gradient(20, 12)
	path := filepath.Join(t.TempDir(), "g.png")
	if err := im.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 20 || got.H != 12 {
		t.Fatalf("size %dx%d", got.W, got.H)
	}
	if d := maxPixelDiff(im, got); d > 1.0/254 {
		t.Fatalf("max pixel diff %g", d)
	}
}

func TestPPMFileRoundTrip(t *testing.T) {
	im := gradient(8, 8)
	path := filepath.Join(t.TempDir(), "g.ppm")
	if err := im.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxPixelDiff(im, got); d > 1.0/254 {
		t.Fatalf("max pixel diff %g", d)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.png")); err == nil {
		t.Fatal("missing file read")
	}
	path := filepath.Join(t.TempDir(), "x.gif")
	im := gradient(4, 4)
	if err := im.WriteFile(path); err == nil {
		t.Fatal("unsupported write format accepted")
	}
	_ = path
}

func TestStdImageConversion(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 3, 2))
	src.Set(1, 1, color.RGBA{R: 255, G: 128, B: 0, A: 255})
	im := FromStdImage(src)
	if im.W != 3 || im.H != 2 {
		t.Fatalf("size %dx%d", im.W, im.H)
	}
	p := im.At(1, 1)
	if p.R < 0.99 || math.Abs(float64(p.G)-128.0/255) > 0.01 || p.B != 0 {
		t.Fatalf("pixel %v", p)
	}
	back := im.ToStdImage()
	r, g, b, _ := back.At(1, 1).RGBA()
	if r>>8 != 255 || (g>>8) < 126 || (g>>8) > 130 || b>>8 != 0 {
		t.Fatalf("round trip pixel %d %d %d", r>>8, g>>8, b>>8)
	}
	// Non-zero-origin bounds are normalized.
	shifted := image.NewRGBA(image.Rect(5, 5, 8, 7))
	shifted.Set(5, 5, color.RGBA{R: 255, A: 255})
	im2 := FromStdImage(shifted)
	if im2.W != 3 || im2.H != 2 || im2.At(0, 0).R < 0.99 {
		t.Fatalf("shifted bounds mishandled: %dx%d %v", im2.W, im2.H, im2.At(0, 0))
	}
}
