package imagefeat

import (
	"math"
	"testing"
)

// twoTone builds an image whose left half is color a and right half color b.
func twoTone(w, h int, a, b RGB) *Image {
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x < w/2 {
				im.Set(x, y, a)
			} else {
				im.Set(x, y, b)
			}
		}
	}
	return im
}

func TestSegmentTwoRegions(t *testing.T) {
	im := twoTone(32, 32, RGB{1, 0, 0}, RGB{0, 0, 1})
	regions, labels := Segmenter{}.Segment(im)
	if len(regions) != 2 {
		t.Fatalf("found %d regions, want 2", len(regions))
	}
	if labels[0] == labels[31] {
		t.Fatal("left and right halves share a label")
	}
	total := 0
	for _, r := range regions {
		total += r.Pixels
	}
	if total != 32*32 {
		t.Fatalf("region pixels sum to %d", total)
	}
}

func TestSegmentUniformImage(t *testing.T) {
	im := twoTone(16, 16, RGB{0.5, 0.5, 0.5}, RGB{0.5, 0.5, 0.5})
	regions, _ := Segmenter{}.Segment(im)
	if len(regions) != 1 {
		t.Fatalf("uniform image produced %d regions", len(regions))
	}
	r := regions[0]
	if r.MinX != 0 || r.MinY != 0 || r.MaxX != 15 || r.MaxY != 15 {
		t.Fatalf("bbox %d,%d–%d,%d", r.MinX, r.MinY, r.MaxX, r.MaxY)
	}
	if math.Abs(r.Mean[0]-0.5) > 1e-6 || r.Std[0] > 1e-6 {
		t.Fatalf("moments: mean %g std %g", r.Mean[0], r.Std[0])
	}
}

func TestSmallRegionsMerged(t *testing.T) {
	// A couple of isolated off-color pixels must be merged away.
	im := twoTone(32, 32, RGB{0.2, 0.8, 0.2}, RGB{0.2, 0.8, 0.2})
	im.Set(5, 5, RGB{1, 1, 1})
	im.Set(20, 20, RGB{0, 0, 0})
	regions, _ := Segmenter{}.Segment(im)
	if len(regions) != 1 {
		t.Fatalf("speckled image produced %d regions, want 1 after merging", len(regions))
	}
}

func TestMaxRegionsCap(t *testing.T) {
	// A 32-stripe image collapses to MaxRegions regions.
	im := NewImage(64, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 64; x++ {
			v := float32(x/2) / 32
			im.Set(x, y, RGB{v, 1 - v, float32((x / 2) % 2)})
		}
	}
	s := Segmenter{MaxRegions: 4, Tolerance: 0.05, MinRegionFrac: 0.0001}
	regions, _ := s.Segment(im)
	if len(regions) > 4 {
		t.Fatalf("cap not enforced: %d regions", len(regions))
	}
}

func TestFeatureVector(t *testing.T) {
	im := twoTone(32, 32, RGB{1, 0, 0}, RGB{0, 0, 1})
	regions, _ := Segmenter{}.Segment(im)
	for _, r := range regions {
		v := Feature(im, &r)
		if len(v) != FeatureDim {
			t.Fatalf("feature dim %d", len(v))
		}
		// Bbox for a half image: w=16, h=32 → aspect 16/48 = 1/3.
		if math.Abs(float64(v[9])-1.0/3) > 1e-3 {
			t.Errorf("aspect = %g, want 1/3", v[9])
		}
		// Bbox covers half the image.
		if math.Abs(float64(v[10])-0.5) > 1e-3 {
			t.Errorf("bbox size = %g, want 0.5", v[10])
		}
		// Region fills its bbox entirely.
		if math.Abs(float64(v[11])-1) > 1e-3 {
			t.Errorf("area ratio = %g, want 1", v[11])
		}
	}
}

func TestFeatureBoundsContainRealFeatures(t *testing.T) {
	min, max := FeatureBounds()
	if len(min) != FeatureDim || len(max) != FeatureDim {
		t.Fatal("bounds dimension")
	}
	im := twoTone(32, 32, RGB{0.9, 0.1, 0.4}, RGB{0.1, 0.9, 0.6})
	regions, _ := Segmenter{}.Segment(im)
	for _, r := range regions {
		v := Feature(im, &r)
		for d, x := range v {
			if x < min[d]-1e-6 || x > max[d]+1e-6 {
				t.Errorf("feature dim %d = %g outside [%g, %g]", d, x, min[d], max[d])
			}
		}
	}
}

func TestExtract(t *testing.T) {
	im := twoTone(32, 32, RGB{1, 0, 0}, RGB{0, 0, 1})
	var e Extractor
	o, err := e.Extract("img", im)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(o.Segments) != 2 {
		t.Fatalf("%d segments", len(o.Segments))
	}
	// Equal-size regions get equal √size weights.
	if math.Abs(float64(o.Segments[0].Weight)-0.5) > 1e-3 {
		t.Errorf("weight = %g, want 0.5", o.Segments[0].Weight)
	}
}

func TestExtractEmptyImage(t *testing.T) {
	var e Extractor
	if _, err := e.Extract("x", nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := e.Extract("x", &Image{}); err == nil {
		t.Fatal("zero-size image accepted")
	}
}

func TestSimilarImagesCloserThanDifferent(t *testing.T) {
	// The core retrieval property at feature level: a re-render with small
	// noise stays closer (per matched region) than a different scene.
	base := twoTone(32, 32, RGB{1, 0, 0}, RGB{0, 0, 1})
	near := twoTone(32, 32, RGB{0.95, 0.05, 0}, RGB{0.02, 0, 0.97})
	far := twoTone(32, 32, RGB{0, 1, 0}, RGB{1, 1, 0})
	var e Extractor
	ob, _ := e.Extract("b", base)
	on, _ := e.Extract("n", near)
	of, _ := e.Extract("f", far)
	l1 := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			s += math.Abs(float64(a[i]) - float64(b[i]))
		}
		return s
	}
	dNear := l1(ob.Segments[0].Vec, on.Segments[0].Vec)
	dFar := l1(ob.Segments[0].Vec, of.Segments[0].Vec)
	if dNear >= dFar {
		t.Errorf("near %g >= far %g", dNear, dFar)
	}
}
