package imagefeat

import (
	"bufio"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// FromStdImage converts a decoded standard-library image into the plug-in's
// raster representation.
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	im := NewImage(b.Dx(), b.Dy())
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, bb, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			im.Set(x, y, RGB{
				R: float32(r) / 65535,
				G: float32(g) / 65535,
				B: float32(bb) / 65535,
			})
		}
	}
	return im
}

// ToStdImage converts the raster into a standard-library RGBA image.
func (im *Image) ToStdImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.At(x, y)
			out.Set(x, y, color.RGBA{
				R: uint8(clampByte(p.R)),
				G: uint8(clampByte(p.G)),
				B: uint8(clampByte(p.B)),
				A: 255,
			})
		}
	}
	return out
}

func clampByte(v float32) int {
	x := int(v*255 + 0.5)
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return x
}

// WritePNG encodes the image as PNG.
func (im *Image) WritePNG(w io.Writer) error {
	return png.Encode(w, im.ToStdImage())
}

// ReadFile loads an image file by extension: .png (stdlib decoder) or .ppm
// (binary P6).
func ReadFile(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".png":
		src, err := png.Decode(bufio.NewReader(f))
		if err != nil {
			return nil, fmt.Errorf("imagefeat: decoding %s: %w", path, err)
		}
		return FromStdImage(src), nil
	case ".ppm":
		return ReadPPM(bufio.NewReader(f))
	default:
		return nil, fmt.Errorf("imagefeat: unsupported image format %q", filepath.Ext(path))
	}
}

// WriteFile saves the image by extension (.png or .ppm). The file's Close
// error is propagated: it is the last chance to learn that buffered image
// data never reached the kernel.
func (im *Image) WriteFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	switch strings.ToLower(filepath.Ext(path)) {
	case ".png":
		if err := im.WritePNG(w); err != nil {
			return err
		}
	case ".ppm":
		if err := im.WritePPM(w); err != nil {
			return err
		}
	default:
		return fmt.Errorf("imagefeat: unsupported image format %q", filepath.Ext(path))
	}
	return w.Flush()
}

// WritePPM encodes the image as a binary (P6) PPM.
func (im *Image) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	row := make([]byte, im.W*3)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.At(x, y)
			row[x*3] = byte(clampByte(p.R))
			row[x*3+1] = byte(clampByte(p.G))
			row[x*3+2] = byte(clampByte(p.B))
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// ReadPPM decodes a binary (P6) PPM image.
func ReadPPM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxVal int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxVal); err != nil {
		return nil, fmt.Errorf("imagefeat: PPM header: %w", err)
	}
	if magic != "P6" || w <= 0 || h <= 0 || maxVal != 255 || w > 1<<14 || h > 1<<14 {
		return nil, fmt.Errorf("imagefeat: unsupported PPM header %s %dx%d max %d", magic, w, h, maxVal)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	im := NewImage(w, h)
	buf := make([]byte, w*h*3)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("imagefeat: PPM pixels: %w", err)
	}
	for i := 0; i < w*h; i++ {
		im.Pix[i] = RGB{
			R: float32(buf[i*3]) / 255,
			G: float32(buf[i*3+1]) / 255,
			B: float32(buf[i*3+2]) / 255,
		}
	}
	return im, nil
}
