package acquire

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ferret/internal/attr"
	"ferret/internal/object"
)

// fakeSystem collects ingested objects like an engine would.
type fakeSystem struct {
	ingested map[string]object.Object
	failKeys map[string]bool
}

func newFake() *fakeSystem {
	return &fakeSystem{ingested: map[string]object.Object{}, failKeys: map[string]bool{}}
}

func (f *fakeSystem) extract(path string) (object.Object, error) {
	if strings.Contains(path, "corrupt") {
		return object.Object{}, errors.New("corrupt file")
	}
	return object.Single("", []float32{float32(len(path))}), nil
}

func (f *fakeSystem) exists(key string) bool { _, ok := f.ingested[key]; return ok }

func (f *fakeSystem) ingest(o object.Object, a attr.Attrs) error {
	if f.failKeys[o.Key] {
		return errors.New("ingest failure")
	}
	f.ingested[o.Key] = o
	return nil
}

func writeFiles(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, n := range names {
		path := filepath.Join(dir, n)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanOnce(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, "a.off", "sub/b.off", "notes.txt")
	f := newFake()
	s := &Scanner{
		Dir:        dir,
		Extensions: []string{".off"},
		Extract:    f.extract,
		Exists:     f.exists,
		Ingest:     f.ingest,
	}
	added, err := s.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added %d, want 2", added)
	}
	if _, ok := f.ingested["sub/b.off"]; !ok {
		t.Fatalf("keys: %v", f.ingested)
	}
	if _, ok := f.ingested["notes.txt"]; ok {
		t.Fatal("extension filter ignored")
	}
	// Second scan: nothing new.
	added, err = s.ScanOnce()
	if err != nil || added != 0 {
		t.Fatalf("rescan added %d, err %v", added, err)
	}
	// A new file appears.
	writeFiles(t, dir, "c.off")
	added, _ = s.ScanOnce()
	if added != 1 {
		t.Fatalf("incremental scan added %d", added)
	}
}

func TestScanSkipsFailingFiles(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, "good.off", "corrupt.off")
	f := newFake()
	var failures []string
	s := &Scanner{
		Dir:     dir,
		Extract: f.extract,
		Exists:  f.exists,
		Ingest:  f.ingest,
		OnError: func(path string, err error) { failures = append(failures, filepath.Base(path)) },
	}
	added, err := s.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added %d", added)
	}
	if len(failures) != 1 || failures[0] != "corrupt.off" {
		t.Fatalf("failures %v", failures)
	}
}

func TestScanIngestErrorReported(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, "x.off")
	f := newFake()
	f.failKeys["x.off"] = true
	errs := 0
	s := &Scanner{
		Dir: dir, Extract: f.extract, Exists: f.exists, Ingest: f.ingest,
		OnError: func(string, error) { errs++ },
	}
	added, err := s.ScanOnce()
	if err != nil || added != 0 || errs != 1 {
		t.Fatalf("added=%d err=%v errs=%d", added, err, errs)
	}
}

func TestScanRequiresConfig(t *testing.T) {
	if _, err := (&Scanner{}).ScanOnce(); err == nil {
		t.Fatal("unconfigured scanner ran")
	}
}

func TestRunPeriodic(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, "a.off")
	f := newFake()
	s := &Scanner{
		Dir: dir, Interval: 10 * time.Millisecond,
		Extract: f.extract, Exists: f.exists, Ingest: f.ingest,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch := s.Run(ctx)
	// First scan picks up a.off.
	select {
	case added := <-ch:
		if added != 1 {
			t.Fatalf("first scan added %d", added)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no scan completed")
	}
	// Add a file, wait for a later scan to find it.
	writeFiles(t, dir, "later.off")
	deadline := time.After(2 * time.Second)
	for {
		select {
		case <-ch:
			if _, ok := f.ingested["later.off"]; ok {
				cancel()
				return
			}
		case <-deadline:
			cancel()
			t.Fatal("later.off never ingested")
		}
	}
}

// TestScanRatePacing asserts the sustained-rate driver: a positive Rate
// spaces ingests out on an absolute schedule, so a scan of n files takes at
// least (n-1)/Rate. The bound is one-sided — scheduling jitter can only
// slow a scan down, never compress it below the pace.
func TestScanRatePacing(t *testing.T) {
	dir := t.TempDir()
	writeFiles(t, dir, "a.off", "b.off", "c.off", "d.off", "e.off")
	f := newFake()
	s := &Scanner{
		Dir:     dir,
		Extract: f.extract,
		Ingest:  f.ingest,
		Rate:    100, // 10ms per object
	}
	start := time.Now()
	added, err := s.ScanOnce()
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 {
		t.Fatalf("added %d files, want 5", added)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("paced scan of 5 files finished in %v, want >= 40ms", elapsed)
	}
	// Rate 0 stays unpaced: a rescan (everything exists) is instant.
	s.Exists = f.exists
	s.Rate = 0
	if added, err := s.ScanOnce(); err != nil || added != 0 {
		t.Fatalf("rescan: added %d, err %v", added, err)
	}
}
