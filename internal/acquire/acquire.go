// Package acquire implements the Ferret toolkit's default data acquisition
// component (paper §4.3): a periodic scan of a designated directory that
// imports each newly added file into the similarity search system through
// the plug-in extractor. Alternative sources (external databases, object
// stores) customize the component by supplying their own Scanner fields.
package acquire

import (
	"context"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"time"

	"ferret/internal/attr"
	"ferret/internal/object"
)

// Scanner watches a directory tree and ingests new files.
type Scanner struct {
	// Dir is the designated directory to scan recursively.
	Dir string
	// Interval between scans for Run. Default 10s.
	Interval time.Duration
	// Extensions filters file names (lower case, with dot, e.g. ".off").
	// Empty means all files.
	Extensions []string
	// Extract is the plug-in segmentation and feature extraction function;
	// the object's key defaults to the path relative to Dir.
	Extract func(path string) (object.Object, error)
	// Exists reports whether a key was already ingested (dedup).
	Exists func(key string) bool
	// Ingest adds the object with its attributes to the search system.
	Ingest func(o object.Object, a attr.Attrs) error
	// Rate, when positive, paces ingestion at this many objects per second
	// — the sustained-rate regime of the ingest daemon. Pacing sleeps
	// between ingest calls; backpressure from a bounded ingest queue adds
	// on top, so the effective rate is min(Rate, engine commit rate).
	Rate float64
	// OnError, when set, observes per-file failures (which are otherwise
	// skipped so one bad file cannot stall acquisition).
	OnError func(path string, err error)
}

// ScanOnce walks the directory once, ingesting files not yet in the
// system. It returns the number of newly ingested objects.
func (s *Scanner) ScanOnce() (int, error) {
	if s.Dir == "" || s.Extract == nil || s.Ingest == nil {
		return 0, fmt.Errorf("acquire: Dir, Extract and Ingest are required")
	}
	added := 0
	var next time.Time // absolute pacing schedule: one slot per Rate⁻¹
	err := filepath.WalkDir(s.Dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !s.match(d.Name()) {
			return nil
		}
		rel, err := filepath.Rel(s.Dir, path)
		if err != nil {
			rel = path
		}
		key := filepath.ToSlash(rel)
		if s.Exists != nil && s.Exists(key) {
			return nil
		}
		if s.Rate > 0 {
			// Absolute schedule rather than a per-file sleep: a slow extract
			// or a blocked ingest consumes its own slot, so the scan holds
			// the configured rate on average instead of adding to it.
			if now := time.Now(); next.After(now) {
				time.Sleep(next.Sub(now))
				next = next.Add(time.Duration(float64(time.Second) / s.Rate))
			} else {
				next = now.Add(time.Duration(float64(time.Second) / s.Rate))
			}
		}
		o, err := s.Extract(path)
		if err != nil {
			s.fail(path, err)
			return nil
		}
		// The scanner owns the naming: objects acquired from the directory
		// are keyed by their path relative to Dir, whatever key the
		// extractor chose, so keys stay stable across machines and match
		// benchmark files.
		o.Key = key
		if err := s.Ingest(o, attr.Attrs{"path": key}); err != nil {
			s.fail(path, err)
			return nil
		}
		added++
		return nil
	})
	return added, err
}

// Run scans periodically until the context is cancelled, delivering the
// per-scan added counts on the returned channel (dropped if not consumed).
func (s *Scanner) Run(ctx context.Context) <-chan int {
	interval := s.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	ch := make(chan int, 1)
	go func() {
		defer close(ch)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			added, err := s.ScanOnce()
			if err != nil {
				s.fail(s.Dir, err)
			}
			select {
			case ch <- added:
			default:
			}
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()
	return ch
}

func (s *Scanner) match(name string) bool {
	if len(s.Extensions) == 0 {
		return true
	}
	ext := strings.ToLower(filepath.Ext(name))
	for _, e := range s.Extensions {
		if ext == e {
			return true
		}
	}
	return false
}

func (s *Scanner) fail(path string, err error) {
	if s.OnError != nil {
		s.OnError(path, err)
	}
}
