package sensorfeat

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func sine(channels, samples int, freq float64) *Series {
	s := &Series{Data: make([][]float32, samples)}
	for c := 0; c < channels; c++ {
		s.Channels = append(s.Channels, "ch")
	}
	for t := 0; t < samples; t++ {
		row := make([]float32, channels)
		for c := 0; c < channels; c++ {
			row[c] = float32(math.Sin(2 * math.Pi * freq * float64(t+c*7)))
		}
		s.Data[t] = row
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (&Series{}).Validate(); err == nil {
		t.Fatal("empty series accepted")
	}
	s := sine(2, 10, 0.1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Data[3] = s.Data[3][:1]
	if err := s.Validate(); err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestWindows(t *testing.T) {
	sg := Segmenter{Window: 10, Stride: 5}
	wins := sg.Windows(25)
	// 0-10, 5-15, 10-20, 15-25: the trailing remainder is covered.
	if len(wins) != 4 || wins[3] != [2]int{15, 25} {
		t.Fatalf("windows %v", wins)
	}
	// Short series: one whole-series window.
	if wins := sg.Windows(7); len(wins) != 1 || wins[0] != [2]int{0, 7} {
		t.Fatalf("short windows %v", wins)
	}
	// Defaults resolve.
	d := Segmenter{}.withDefaults()
	if d.Window != 64 || d.Stride != 32 {
		t.Fatalf("defaults %+v", d)
	}
}

func TestWindowFeature(t *testing.T) {
	// A constant series: zero std/roughness, mean = min = max = value.
	s := &Series{Channels: []string{"a"}, Data: make([][]float32, 16)}
	for t2 := range s.Data {
		s.Data[t2] = []float32{2.5}
	}
	vec, activity := windowFeature(s, 0, 16)
	if len(vec) != FeaturesPerChannel {
		t.Fatalf("dim %d", len(vec))
	}
	if vec[0] != 2.5 || vec[1] != 0 || vec[2] != 2.5 || vec[3] != 2.5 || vec[4] != 0 {
		t.Fatalf("features %v", vec)
	}
	if activity != 0 {
		t.Fatalf("activity %g", activity)
	}
}

func TestExtract(t *testing.T) {
	var e Extractor
	s := sine(3, 200, 0.05)
	o, err := e.Extract("rec", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Dim() != 3*FeaturesPerChannel {
		t.Fatalf("dim %d", o.Dim())
	}
	if len(o.Segments) < 3 {
		t.Fatalf("%d segments", len(o.Segments))
	}
	if _, err := e.Extract("bad", &Series{}); err == nil {
		t.Fatal("invalid series extracted")
	}
}

// TestActiveWindowsWeighMore: a series that is flat then oscillating must
// put most weight on the oscillating windows.
func TestActiveWindowsWeighMore(t *testing.T) {
	s := &Series{Channels: []string{"a"}, Data: make([][]float32, 256)}
	for t2 := 0; t2 < 256; t2++ {
		v := float32(0)
		if t2 >= 128 {
			v = float32(math.Sin(float64(t2) * 0.5))
		}
		s.Data[t2] = []float32{v}
	}
	e := Extractor{Seg: Segmenter{Window: 64, Stride: 64}}
	o, err := e.Extract("x", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Segments) != 4 {
		t.Fatalf("%d segments", len(o.Segments))
	}
	flat := o.Segments[0].Weight + o.Segments[1].Weight
	active := o.Segments[2].Weight + o.Segments[3].Weight
	if active < 100*flat {
		t.Fatalf("active weight %g not dominating flat %g", active, flat)
	}
}

func TestBounds(t *testing.T) {
	min, max := Bounds([]float32{-1, 0}, []float32{1, 4})
	if len(min) != 2*FeaturesPerChannel {
		t.Fatalf("dim %d", len(min))
	}
	if min[0] != -1 || max[0] != 1 || max[1] != 1 { // ch0 mean, std
		t.Fatalf("ch0 bounds %v %v", min[:5], max[:5])
	}
	if min[5] != 0 || max[5] != 4 || max[9] != 4 { // ch1 mean, roughness
		t.Fatalf("ch1 bounds %v %v", min[5:], max[5:])
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := sine(2, 20, 0.1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 20 || len(got.Channels) != 2 {
		t.Fatalf("shape %dx%d", len(got.Data), len(got.Channels))
	}
	for t2 := range got.Data {
		for c := range got.Data[t2] {
			if math.Abs(float64(got.Data[t2][c]-s.Data[t2][c])) > 1e-5 {
				t.Fatalf("value changed at %d,%d", t2, c)
			}
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b\n1\n",        // missing value
		"a\nnot-number\n", // bad value
		"a\n",             // no samples
	}
	for i, src := range cases {
		if _, err := ParseCSV(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestSameSignalCloseDifferentFar at the feature level.
func TestSignalSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	noisy := func(freq float64) *Series {
		s := sine(2, 256, freq)
		for t2 := range s.Data {
			for c := range s.Data[t2] {
				s.Data[t2][c] += float32(rng.NormFloat64() * 0.05)
			}
		}
		return s
	}
	var e Extractor
	a, _ := e.Extract("a", noisy(0.05))
	a2, _ := e.Extract("a2", noisy(0.05))
	b, _ := e.Extract("b", noisy(0.21))
	l1 := func(x, y []float32) float64 {
		var s float64
		for i := range x {
			s += math.Abs(float64(x[i]) - float64(y[i]))
		}
		return s
	}
	dSame := l1(a.Segments[0].Vec, a2.Segments[0].Vec)
	dDiff := l1(a.Segments[0].Vec, b.Segments[0].Vec)
	if dSame >= dDiff {
		t.Fatalf("same-frequency distance %g >= different %g", dSame, dDiff)
	}
}
