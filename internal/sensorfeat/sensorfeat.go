// Package sensorfeat is a sensor-data plug-in for the Ferret toolkit,
// implementing the paper's §8 plan to "expand the usage of [the] Ferret
// toolkit to include video and other sensor data": multivariate time
// series are segmented into overlapping windows, each described by
// per-channel statistics, with weights proportional to the window's
// activity so that eventful stretches dominate the match.
package sensorfeat

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"ferret/internal/object"
)

// FeaturesPerChannel is the number of statistics extracted per channel per
// window: mean, standard deviation, min, max, and mean absolute first
// difference (roughness).
const FeaturesPerChannel = 5

// Series is a multivariate time series: Data[t][c] is channel c at sample
// t.
type Series struct {
	Channels []string
	Data     [][]float32
}

// Validate checks that the series is rectangular and non-empty.
func (s *Series) Validate() error {
	if len(s.Channels) == 0 {
		return errors.New("sensorfeat: no channels")
	}
	if len(s.Data) == 0 {
		return errors.New("sensorfeat: no samples")
	}
	for t, row := range s.Data {
		if len(row) != len(s.Channels) {
			return fmt.Errorf("sensorfeat: sample %d has %d channels, want %d", t, len(row), len(s.Channels))
		}
	}
	return nil
}

// Segmenter slices a series into overlapping windows.
type Segmenter struct {
	// Window is the segment length in samples. Default 64.
	Window int
	// Stride between window starts. Default Window/2 (50% overlap).
	Stride int
}

func (sg Segmenter) withDefaults() Segmenter {
	if sg.Window <= 0 {
		sg.Window = 64
	}
	if sg.Stride <= 0 {
		sg.Stride = sg.Window / 2
		if sg.Stride == 0 {
			sg.Stride = 1
		}
	}
	return sg
}

// Windows returns the [start, end) sample ranges of the segments. A series
// shorter than one window yields a single whole-series segment.
func (sg Segmenter) Windows(samples int) [][2]int {
	p := sg.withDefaults()
	if samples <= p.Window {
		return [][2]int{{0, samples}}
	}
	var out [][2]int
	for start := 0; start+p.Window <= samples; start += p.Stride {
		out = append(out, [2]int{start, start + p.Window})
	}
	// Cover a trailing remainder with one final window.
	if last := out[len(out)-1]; last[1] < samples {
		out = append(out, [2]int{samples - p.Window, samples})
	}
	return out
}

// windowFeature computes the FeaturesPerChannel×channels vector of one
// window, returning also the window's total variance (its activity).
func windowFeature(s *Series, start, end int) ([]float32, float64) {
	c := len(s.Channels)
	vec := make([]float32, 0, FeaturesPerChannel*c)
	var activity float64
	n := float64(end - start)
	for ch := 0; ch < c; ch++ {
		var sum, sq float64
		minV, maxV := math.Inf(1), math.Inf(-1)
		var diff float64
		for t := start; t < end; t++ {
			v := float64(s.Data[t][ch])
			sum += v
			sq += v * v
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			if t > start {
				diff += math.Abs(v - float64(s.Data[t-1][ch]))
			}
		}
		mean := sum / n
		variance := sq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		roughness := 0.0
		if n > 1 {
			roughness = diff / (n - 1)
		}
		vec = append(vec,
			float32(mean),
			float32(math.Sqrt(variance)),
			float32(minV),
			float32(maxV),
			float32(roughness),
		)
		activity += variance
	}
	return vec, activity
}

// Extractor converts series into Ferret objects.
type Extractor struct {
	Seg Segmenter
}

// Extract segments the series into windows and weights each window by its
// activity (total variance across channels), so flat stretches contribute
// little to the object distance.
func (e *Extractor) Extract(key string, s *Series) (object.Object, error) {
	if err := s.Validate(); err != nil {
		return object.Object{}, err
	}
	wins := e.Seg.Windows(len(s.Data))
	weights := make([]float32, len(wins))
	vecs := make([][]float32, len(wins))
	for i, w := range wins {
		vec, activity := windowFeature(s, w[0], w[1])
		vecs[i] = vec
		// A small floor keeps all-flat series valid (uniform weights).
		weights[i] = float32(activity) + 1e-6
	}
	return object.New(key, weights, vecs)
}

// Bounds returns per-dimension [min, max] feature bounds for sketch
// construction, derived from per-channel value ranges [lo, hi]: means,
// minima and maxima stay within the channel range; standard deviation
// within half the range; roughness within the full range.
func Bounds(lo, hi []float32) (min, max []float32) {
	c := len(lo)
	min = make([]float32, FeaturesPerChannel*c)
	max = make([]float32, FeaturesPerChannel*c)
	for ch := 0; ch < c; ch++ {
		span := hi[ch] - lo[ch]
		base := ch * FeaturesPerChannel
		min[base+0], max[base+0] = lo[ch], hi[ch] // mean
		min[base+1], max[base+1] = 0, span/2      // std
		min[base+2], max[base+2] = lo[ch], hi[ch] // min
		min[base+3], max[base+3] = lo[ch], hi[ch] // max
		min[base+4], max[base+4] = 0, span        // roughness
	}
	return min, max
}

// ParseCSV reads a series: a header "ch1,ch2,..." then one comma-separated
// sample row per line.
func ParseCSV(r io.Reader) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, errors.New("sensorfeat: empty input")
	}
	s := &Series{Channels: strings.Split(strings.TrimSpace(sc.Text()), ",")}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != len(s.Channels) {
			return nil, fmt.Errorf("sensorfeat: row %d has %d values, want %d", len(s.Data)+1, len(fields), len(s.Channels))
		}
		row := make([]float32, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 32)
			if err != nil {
				return nil, fmt.Errorf("sensorfeat: row %d col %d: %w", len(s.Data)+1, i, err)
			}
			row[i] = float32(v)
		}
		s.Data = append(s.Data, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, s.Validate()
}

// WriteCSV writes the series in the format ParseCSV reads.
func WriteCSV(w io.Writer, s *Series) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(s.Channels, ","))
	for _, row := range s.Data {
		for i, v := range row {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%g", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
