// Package metrics implements the search-quality metrics used in the paper's
// evaluation (§6.2): first-tier, second-tier, and average precision, all
// defined against a "gold standard" similarity set.
//
// Conventions match the paper: for a query drawn from a similarity set Q,
// the relevant targets are the other |Q|−1 members; search results must not
// include the query object itself (the evaluation tool strips it).
package metrics

import "ferret/internal/object"

// GoldSet is an unordered set of object IDs considered mutually similar.
type GoldSet map[object.ID]bool

// NewGoldSet builds a GoldSet from IDs.
func NewGoldSet(ids ...object.ID) GoldSet {
	g := make(GoldSet, len(ids))
	for _, id := range ids {
		g[id] = true
	}
	return g
}

// targets returns the number of relevant targets for a query from gold:
// |Q|−1 if the query is a member, |Q| otherwise.
func (g GoldSet) targets(query object.ID) int {
	k := len(g)
	if g[query] {
		k--
	}
	return k
}

// FirstTier returns the fraction of the query's similarity set (excluding
// the query itself) found within the top k = |Q|−1 results.
func FirstTier(query object.ID, gold GoldSet, results []object.ID) float64 {
	return tier(query, gold, results, 1)
}

// SecondTier is like FirstTier with k = 2·(|Q|−1): twice as many results are
// inspected, so it is the less stringent recall measure.
func SecondTier(query object.ID, gold GoldSet, results []object.ID) float64 {
	return tier(query, gold, results, 2)
}

func tier(query object.ID, gold GoldSet, results []object.ID, mult int) float64 {
	k := gold.targets(query)
	if k <= 0 {
		return 0
	}
	top := mult * k
	if top > len(results) {
		top = len(results)
	}
	found := 0
	for _, id := range results[:top] {
		if id != query && gold[id] {
			found++
		}
	}
	return float64(found) / float64(k)
}

// AveragePrecision implements the paper's definition: with k = |Q|−1
// relevant targets, let rank_i be the (1-based) rank of the i-th retrieved
// relevant object in the result ordering; relevant objects absent from the
// results take the default rank datasetSize. The score is
//
//	(1/k) · Σ_{i=1..k} i / rank_i
//
// which is 1 for a perfect ranking.
func AveragePrecision(query object.ID, gold GoldSet, results []object.ID, datasetSize int) float64 {
	k := gold.targets(query)
	if k <= 0 {
		return 0
	}
	var sum float64
	hits := 0
	for pos, id := range results {
		if id == query || !gold[id] {
			continue
		}
		hits++
		sum += float64(hits) / float64(pos+1)
		if hits == k {
			break
		}
	}
	// Relevant objects never retrieved get the default rank datasetSize.
	if datasetSize < len(results) {
		datasetSize = len(results) + 1
	}
	for i := hits + 1; i <= k; i++ {
		sum += float64(i) / float64(datasetSize)
	}
	return sum / float64(k)
}

// QualityStats aggregates per-query metric values.
type QualityStats struct {
	Queries        int
	AvgPrecision   float64
	AvgFirstTier   float64
	AvgSecondTier  float64
	sumPrec, sumFT float64
	sumST          float64
}

// Add accumulates one query's scores.
func (q *QualityStats) Add(prec, firstTier, secondTier float64) {
	q.Queries++
	q.sumPrec += prec
	q.sumFT += firstTier
	q.sumST += secondTier
	q.AvgPrecision = q.sumPrec / float64(q.Queries)
	q.AvgFirstTier = q.sumFT / float64(q.Queries)
	q.AvgSecondTier = q.sumST / float64(q.Queries)
}
