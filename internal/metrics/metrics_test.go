package metrics

import (
	"math"
	"testing"

	"ferret/internal/object"
)

// The tests below include the worked examples from paper §6.2.

func TestFirstTierPaperExample(t *testing.T) {
	// Q = {q1, q2, q3}, query q1, top-2 results {r1, q2} → 50%.
	gold := NewGoldSet(1, 2, 3)
	results := []object.ID{100, 2, 3, 101}
	if got := FirstTier(1, gold, results); got != 0.5 {
		t.Errorf("first tier = %g, want 0.5", got)
	}
}

func TestSecondTierPaperExample(t *testing.T) {
	// Q = {q1, q2, q3}, query q1, top-4 results {r1, q2, q3, r4} → 100%.
	gold := NewGoldSet(1, 2, 3)
	results := []object.ID{100, 2, 3, 101}
	if got := SecondTier(1, gold, results); got != 1.0 {
		t.Errorf("second tier = %g, want 1.0", got)
	}
}

func TestAveragePrecisionPaperExample(t *testing.T) {
	// Results r1, q2, q3, r4 → AP = 1/2 · (1/2 + 2/3) = 0.583…
	gold := NewGoldSet(1, 2, 3)
	results := []object.ID{100, 2, 3, 101}
	got := AveragePrecision(1, gold, results, 10000)
	want := 0.5 * (0.5 + 2.0/3.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("average precision = %g, want %g", got, want)
	}
}

func TestPerfectRanking(t *testing.T) {
	gold := NewGoldSet(1, 2, 3, 4)
	results := []object.ID{2, 3, 4, 99, 98}
	if got := FirstTier(1, gold, results); got != 1 {
		t.Errorf("first tier = %g", got)
	}
	if got := SecondTier(1, gold, results); got != 1 {
		t.Errorf("second tier = %g", got)
	}
	if got := AveragePrecision(1, gold, results, 100); got != 1 {
		t.Errorf("avg precision = %g", got)
	}
}

func TestQueryExcludedFromResults(t *testing.T) {
	// If the query itself appears in results it must not count as a hit.
	gold := NewGoldSet(1, 2)
	results := []object.ID{1, 2}
	if got := FirstTier(1, gold, results); got != 0 {
		t.Errorf("first tier counted the query itself: %g", got)
	}
	// Second tier looks at 2·k = 2 results, finds q2 at rank 2.
	if got := SecondTier(1, gold, results); got != 1 {
		t.Errorf("second tier = %g, want 1", got)
	}
}

func TestMissingObjectsGetDefaultRank(t *testing.T) {
	gold := NewGoldSet(1, 2, 3)
	// Only q2 retrieved (rank 1); q3 missing → rank = dataset size 1000.
	results := []object.ID{2}
	got := AveragePrecision(1, gold, results, 1000)
	want := 0.5 * (1.0/1.0 + 2.0/1000.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("avg precision = %g, want %g", got, want)
	}
}

func TestEmptyGold(t *testing.T) {
	gold := NewGoldSet(1)
	if got := FirstTier(1, gold, []object.ID{2, 3}); got != 0 {
		t.Errorf("first tier for singleton gold = %g", got)
	}
	if got := AveragePrecision(1, gold, nil, 10); got != 0 {
		t.Errorf("avg precision for singleton gold = %g", got)
	}
}

func TestQueryNotMemberOfGold(t *testing.T) {
	// When the query is not in the gold set, all |Q| members are targets.
	gold := NewGoldSet(2, 3)
	results := []object.ID{2, 3}
	if got := FirstTier(99, gold, results); got != 1 {
		t.Errorf("first tier = %g, want 1", got)
	}
}

func TestShortResultList(t *testing.T) {
	gold := NewGoldSet(1, 2, 3, 4, 5)
	// k = 4 but only 2 results returned.
	results := []object.ID{2, 99}
	if got := FirstTier(1, gold, results); got != 0.25 {
		t.Errorf("first tier = %g, want 0.25", got)
	}
}

func TestDefaultRankClampedToResults(t *testing.T) {
	// datasetSize smaller than the result list must not inflate scores.
	gold := NewGoldSet(1, 2, 3)
	results := []object.ID{9, 8, 7, 6, 5}
	got := AveragePrecision(1, gold, results, 2)
	if got <= 0 || got >= 1 {
		// Both misses land at rank len(results)+1 = 6.
		want := 0.5 * (1.0/6.0 + 2.0/6.0)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("avg precision = %g, want %g", got, want)
		}
	}
}

func TestQualityStats(t *testing.T) {
	var s QualityStats
	s.Add(1.0, 0.5, 0.75)
	s.Add(0.0, 0.5, 0.25)
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
	if s.AvgPrecision != 0.5 || s.AvgFirstTier != 0.5 || s.AvgSecondTier != 0.5 {
		t.Errorf("aggregates: %+v", s)
	}
}

// TestTierMonotone: second tier is never below first tier for any results.
func TestTierMonotone(t *testing.T) {
	gold := NewGoldSet(1, 2, 3, 4)
	cases := [][]object.ID{
		{2, 9, 3, 9, 9, 4},
		{9, 9, 9, 2, 3, 4},
		{2, 3, 4},
		{},
	}
	for _, results := range cases {
		ft := FirstTier(1, gold, results)
		st := SecondTier(1, gold, results)
		if st < ft {
			t.Errorf("results %v: second tier %g < first tier %g", results, st, ft)
		}
	}
}
