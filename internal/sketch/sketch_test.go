package sketch

import (
	"math"
	"math/rand"
	"testing"

	"ferret/internal/vector"
)

func params(n, k, d int) Params {
	min := make([]float32, d)
	max := make([]float32, d)
	for i := range max {
		max[i] = 1
	}
	return Params{N: n, K: k, Min: min, Max: max, Seed: 42}
}

func TestNewBuilderValidation(t *testing.T) {
	cases := []Params{
		{N: 0, Min: []float32{0}, Max: []float32{1}},
		{N: 8, Min: nil, Max: nil},
		{N: 8, Min: []float32{0, 0}, Max: []float32{1}},
		{N: 8, Min: []float32{1}, Max: []float32{0}},
		{N: 8, Min: []float32{0}, Max: []float32{1}, W: []float32{-1}},
		{N: 8, Min: []float32{0}, Max: []float32{0}}, // zero range everywhere
	}
	for i, p := range cases {
		if _, err := NewBuilder(p); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := params(128, 2, 10)
	b1, err := NewBuilder(p)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := NewBuilder(p)
	v := []float32{0.1, 0.9, 0.3, 0.5, 0.7, 0.2, 0.8, 0.4, 0.6, 0.05}
	s1, s2 := b1.Build(v), b2.Build(v)
	if Hamming(s1, s2) != 0 {
		t.Fatal("same seed produced different sketches")
	}
	p.Seed = 43
	b3, _ := NewBuilder(p)
	if Hamming(s1, b3.Build(v)) == 0 {
		t.Fatal("different seeds produced identical sketches (suspicious)")
	}
}

func TestIdenticalVectorsZeroHamming(t *testing.T) {
	b, _ := NewBuilder(params(256, 3, 8))
	v := []float32{0.2, 0.4, 0.6, 0.8, 0.1, 0.3, 0.5, 0.7}
	if h := Hamming(b.Build(v), b.Build(v)); h != 0 {
		t.Fatalf("Hamming of identical vectors = %d", h)
	}
}

func TestHammingMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Hamming(make(Sketch, 1), make(Sketch, 2))
}

func TestWords(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 1}, {64, 1}, {65, 2}, {128, 2}, {600, 10}} {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBitAndBuildInto(t *testing.T) {
	b, _ := NewBuilder(params(100, 1, 4))
	v := []float32{0.9, 0.1, 0.5, 0.3}
	s := b.Build(v)
	dst := make(Sketch, Words(100))
	b.BuildInto(dst, v)
	for i := range s {
		if s[i] != dst[i] {
			t.Fatal("BuildInto differs from Build")
		}
	}
	// Bit must agree with word content.
	for n := 0; n < 100; n++ {
		want := s[n/64]&(1<<(n%64)) != 0
		if s.Bit(n) != want {
			t.Fatalf("Bit(%d) inconsistent", n)
		}
	}
	// BuildInto must clear prior contents.
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	b.BuildInto(dst, v)
	for i := range s {
		if s[i] != dst[i] {
			t.Fatal("BuildInto did not reset destination")
		}
	}
}

// TestHammingEstimatesL1 is the core estimator property (paper §4.1.1):
// for K=1 the expected fraction of differing bits equals the normalized ℓ₁
// distance, so over many random pairs the observed Hamming fraction must
// concentrate near it.
func TestHammingEstimatesL1(t *testing.T) {
	const d = 16
	b, err := NewBuilder(params(2048, 1, d))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		x := make([]float32, d)
		y := make([]float32, d)
		for i := 0; i < d; i++ {
			x[i] = rng.Float32()
			y[i] = rng.Float32()
		}
		q := b.FlipProbability(x, y)
		wantFrac := b.ExpectedHammingFraction(q)
		got := float64(Hamming(b.Build(x), b.Build(y))) / float64(b.N())
		// With 2048 bits, a ~4σ band around the binomial mean.
		sigma := math.Sqrt(wantFrac * (1 - wantFrac) / float64(b.N()))
		if math.Abs(got-wantFrac) > 4*sigma+0.01 {
			t.Errorf("trial %d: hamming fraction %.4f, expected %.4f (q=%.4f)", trial, got, wantFrac, q)
		}
		// And q itself must match the normalized ℓ₁ distance.
		l1 := vector.L1(x, y)
		if math.Abs(q-l1/b.Scale()) > 1e-9 {
			t.Errorf("FlipProbability %.6f != L1/scale %.6f", q, l1/b.Scale())
		}
	}
}

// TestEstimateL1Inverts: EstimateL1(expected hamming) recovers the ℓ₁
// distance for moderate distances, for several K values.
func TestEstimateL1Inverts(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		b, err := NewBuilder(params(512, k, 8))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0.01, 0.05, 0.1, 0.2} {
			frac := b.ExpectedHammingFraction(q)
			h := int(math.Round(frac * float64(b.N())))
			est := b.EstimateL1(h)
			want := q * b.Scale()
			if math.Abs(est-want) > 0.05*b.Scale() {
				t.Errorf("K=%d q=%.2f: estimate %.4f, want %.4f", k, q, est, want)
			}
		}
	}
}

// TestDampening: for fixed raw flip probability, larger K pushes the
// expected fraction closer to 1/2 faster, i.e. large distances are dampened
// (monotone in K for q < 1/2).
func TestDampening(t *testing.T) {
	b1, _ := NewBuilder(params(64, 1, 4))
	b2, _ := NewBuilder(params(64, 2, 4))
	b4, _ := NewBuilder(params(64, 4, 4))
	q := 0.3
	f1, f2, f4 := b1.ExpectedHammingFraction(q), b2.ExpectedHammingFraction(q), b4.ExpectedHammingFraction(q)
	if !(f1 < f2 && f2 < f4 && f4 < 0.5) {
		t.Errorf("dampening not monotone: %g %g %g", f1, f2, f4)
	}
	// Small distances stay roughly proportional: f ≈ K·q for small q.
	qs := 0.005
	if f := b4.ExpectedHammingFraction(qs); math.Abs(f-4*qs) > 0.001 {
		t.Errorf("small-distance linearity broken: %g vs %g", f, 4*qs)
	}
}

// TestSketchOrderingPreserved: closer vectors should get smaller Hamming
// distances on average — the property filtering relies on.
func TestSketchOrderingPreserved(t *testing.T) {
	const d = 14
	b, _ := NewBuilder(params(1024, 1, d))
	rng := rand.New(rand.NewSource(99))
	base := make([]float32, d)
	for i := range base {
		base[i] = rng.Float32()
	}
	near := append([]float32(nil), base...)
	far := append([]float32(nil), base...)
	for i := range near {
		near[i] = clamp(near[i]+float32(rng.NormFloat64()*0.02), 0, 1)
		far[i] = clamp(far[i]+float32(rng.NormFloat64()*0.3), 0, 1)
	}
	sb, sn, sf := b.Build(base), b.Build(near), b.Build(far)
	if hn, hf := Hamming(sb, sn), Hamming(sb, sf); hn >= hf {
		t.Errorf("near Hamming %d >= far Hamming %d", hn, hf)
	}
}

func TestWeightedDimensions(t *testing.T) {
	// Weight dimension 0 at zero: differences there must not affect sketches.
	p := params(512, 1, 2)
	p.W = []float32{0, 1}
	b, err := NewBuilder(p)
	if err != nil {
		t.Fatal(err)
	}
	a := []float32{0.0, 0.5}
	c := []float32{1.0, 0.5}
	if h := Hamming(b.Build(a), b.Build(c)); h != 0 {
		t.Errorf("zero-weight dimension leaked into sketch: hamming %d", h)
	}
}

func TestBuilderMarshalRoundTrip(t *testing.T) {
	p := params(96, 3, 14)
	p.W = make([]float32, 14)
	for i := range p.W {
		p.W[i] = float32(i + 1)
	}
	b, err := NewBuilder(p)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b2 Builder
	if err := b2.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if b2.N() != b.N() || b2.K() != b.K() || b2.Dim() != b.Dim() || b2.Scale() != b.Scale() {
		t.Fatal("round-tripped builder metadata differs")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		v := make([]float32, 14)
		for i := range v {
			v[i] = rng.Float32()
		}
		if Hamming(b.Build(v), b2.Build(v)) != 0 {
			t.Fatal("round-tripped builder produces different sketches")
		}
	}
}

func TestBuilderUnmarshalRejectsGarbage(t *testing.T) {
	var b Builder
	if err := b.UnmarshalBinary(nil); err == nil {
		t.Error("nil accepted")
	}
	if err := b.UnmarshalBinary(make([]byte, 40)); err == nil {
		t.Error("zero magic accepted")
	}
	good, _ := NewBuilder(params(16, 1, 2))
	enc, _ := good.MarshalBinary()
	if err := b.UnmarshalBinary(enc[:len(enc)-4]); err == nil {
		t.Error("truncated accepted")
	}
}

func TestSketchMarshalRoundTrip(t *testing.T) {
	b, _ := NewBuilder(params(130, 1, 3))
	s := b.Build([]float32{0.2, 0.8, 0.5})
	got, err := UnmarshalSketch(MarshalSketch(s))
	if err != nil {
		t.Fatal(err)
	}
	if Hamming(s, got) != 0 {
		t.Fatal("sketch round trip changed bits")
	}
	if _, err := UnmarshalSketch([]byte{1, 2, 3}); err == nil {
		t.Error("non-multiple-of-8 accepted")
	}
}

func TestBuildDimensionPanics(t *testing.T) {
	b, _ := NewBuilder(params(16, 1, 3))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Build([]float32{1, 2})
}

func BenchmarkBuild96Bit14D(b *testing.B) {
	bl, _ := NewBuilder(params(96, 1, 14))
	v := make([]float32, 14)
	for i := range v {
		v[i] = 0.5
	}
	dst := make(Sketch, Words(96))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bl.BuildInto(dst, v)
	}
}

func BenchmarkHamming600Bit(b *testing.B) {
	bl, _ := NewBuilder(params(600, 2, 192))
	v1 := make([]float32, 192)
	v2 := make([]float32, 192)
	for i := range v1 {
		v1[i] = float32(i) / 192
		v2[i] = float32(191-i) / 192
	}
	s1, s2 := bl.Build(v1), bl.Build(v2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hamming(s1, s2)
	}
}
