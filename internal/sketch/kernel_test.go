package sketch

import (
	"math/rand"
	"testing"
)

// randSketch fills words from the rng.
func randSketch(wps int, rng *rand.Rand) Sketch {
	s := make(Sketch, wps)
	for i := range s {
		s[i] = rng.Uint64()
	}
	return s
}

// buildArena packs count random sketches of wps words into one flat slice
// and also returns them as individually allocated sketches (the pre-arena
// slice-of-slices layout) for cross-checking.
func buildArena(count, wps int, rng *rand.Rand) ([]uint64, []Sketch) {
	arena := make([]uint64, count*wps)
	sks := make([]Sketch, count)
	for i := 0; i < count; i++ {
		sks[i] = randSketch(wps, rng)
		copy(arena[i*wps:], sks[i])
	}
	return arena, sks
}

func TestHammingAtMatchesHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, wps := range []int{1, 2, 3, 4, 10, 13} {
		arena, sks := buildArena(64, wps, rng)
		q := randSketch(wps, rng)
		for i, sk := range sks {
			want := Hamming(q, sk)
			if got := HammingAt(q, arena, i*wps); got != want {
				t.Fatalf("wps=%d row=%d: HammingAt=%d Hamming=%d", wps, i, got, want)
			}
		}
	}
}

func TestHammingBatchMatchesHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, wps := range []int{1, 2, 3, 4, 7, 10} {
		for _, count := range []int{0, 1, 5, 64} {
			arena, sks := buildArena(count, wps, rng)
			q := randSketch(wps, rng)
			dst := make([]int32, count)
			HammingBatch(q, arena, 0, count, dst)
			for i, sk := range sks {
				if want := Hamming(q, sk); int(dst[i]) != want {
					t.Fatalf("wps=%d count=%d row=%d: batch=%d want=%d", wps, count, i, dst[i], want)
				}
			}
		}
	}
}

func TestHammingBatchOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const wps, count = 4, 32
	arena, sks := buildArena(count, wps, rng)
	q := randSketch(wps, rng)
	dst := make([]int32, count-8)
	HammingBatch(q, arena, 8*wps, count-8, dst)
	for i := range dst {
		if want := Hamming(q, sks[8+i]); int(dst[i]) != want {
			t.Fatalf("offset row %d: got %d want %d", i, dst[i], want)
		}
	}
}

func TestHammingSelectMatchesThresholdScan(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, wps := range []int{1, 2, 3, 4, 7, 10} {
		// Odd counts exercise the unrolled kernels' remainder rows.
		for _, count := range []int{0, 1, 2, 5, 63, 64} {
			arena, sks := buildArena(count, wps, rng)
			q := randSketch(wps, rng)
			maxH := int32(64 * wps)
			for _, bound := range []int32{-1, 0, maxH / 3, maxH / 2, maxH} {
				idx := make([]int32, count)
				dist := make([]int32, count)
				n := HammingSelect(q, arena, 0, count, bound, idx, dist)
				k := 0
				for i, sk := range sks {
					h := Hamming(q, sk)
					if int32(h) > bound {
						continue
					}
					if k >= n {
						t.Fatalf("wps=%d count=%d bound=%d: kernel returned %d hits, row %d missing", wps, count, bound, n, i)
					}
					if idx[k] != int32(i) || dist[k] != int32(h) {
						t.Fatalf("wps=%d count=%d bound=%d hit %d: got (row %d, h %d), want (row %d, h %d)",
							wps, count, bound, k, idx[k], dist[k], i, h)
					}
					k++
				}
				if k != n {
					t.Fatalf("wps=%d count=%d bound=%d: kernel returned %d hits, scan found %d", wps, count, bound, n, k)
				}
			}
		}
	}
}

func TestHammingSelectOffset(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	const wps, count = 2, 40
	arena, sks := buildArena(count, wps, rng)
	q := randSketch(wps, rng)
	idx := make([]int32, count)
	dist := make([]int32, count)
	n := HammingSelect(q, arena, 8*wps, count-8, int32(64*wps), idx, dist)
	if n != count-8 {
		t.Fatalf("unbounded select returned %d of %d rows", n, count-8)
	}
	for k := 0; k < n; k++ {
		if want := Hamming(q, sks[8+int(idx[k])]); int(dist[k]) != want {
			t.Fatalf("hit %d (row %d): got %d want %d", k, idx[k], dist[k], want)
		}
	}
}

func TestEstimateL1K1FastPath(t *testing.T) {
	// The K=1 closed form must agree with the generic inversion.
	min := []float32{0, 0}
	max := []float32{1, 1}
	b, err := NewBuilder(Params{N: 128, K: 1, Min: min, Max: max, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h <= 128; h++ {
		frac := float64(h) / 128
		if frac >= 0.5 {
			frac = 0.5 - 1e-9
		}
		want := frac * b.Scale()
		if got := b.EstimateL1(h); got != want {
			t.Fatalf("h=%d: got %g want %g", h, got, want)
		}
	}
}

// The microbenchmarks contrast the arena layout with the pre-arena
// slice-of-slices layout on an equal word budget. The legacy build
// interleaves decoy allocations, as real ingest does (txn buffers, keys,
// metadata encodings land between sketch allocations), so the legacy
// sketches are scattered across the heap the way a grown database's are.

const (
	benchSketches = 1 << 16 // 64k segments
	benchWords    = 10      // 600-bit sketches (the TIMIT audio size)
)

var benchSink int

func buildLegacy(count, wps int, rng *rand.Rand) []Sketch {
	sks := make([]Sketch, count)
	decoys := make([][]byte, 0, count)
	for i := range sks {
		sks[i] = randSketch(wps, rng)
		decoys = append(decoys, make([]byte, 64+rng.Intn(192)))
	}
	_ = decoys
	return sks
}

func BenchmarkHammingArenaScan(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	arena, _ := buildArena(benchSketches, benchWords, rng)
	q := randSketch(benchWords, rng)
	b.SetBytes(int64(benchSketches * benchWords * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := 0
		for row := 0; row < benchSketches; row++ {
			h += HammingAt(q, arena, row*benchWords)
		}
		benchSink = h
	}
}

func BenchmarkHammingBatchScan(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	arena, _ := buildArena(benchSketches, benchWords, rng)
	q := randSketch(benchWords, rng)
	dst := make([]int32, 512)
	b.SetBytes(int64(benchSketches * benchWords * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := int32(0)
		for row := 0; row < benchSketches; row += len(dst) {
			n := benchSketches - row
			if n > len(dst) {
				n = len(dst)
			}
			HammingBatch(q, arena, row*benchWords, n, dst)
			for _, d := range dst[:n] {
				h += d
			}
		}
		benchSink = int(h)
	}
}

func BenchmarkHammingSliceOfSlices(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	sks := buildLegacy(benchSketches, benchWords, rng)
	q := randSketch(benchWords, rng)
	b.SetBytes(int64(benchSketches * benchWords * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := 0
		for _, sk := range sks {
			h += Hamming(q, sk)
		}
		benchSink = h
	}
}
