package sketch

// AVX-512 fused multi-query select. The scalar select kernel is
// compute-bound (~2.5 cycles per word on current hardware, flat across
// working-set sizes), so amortizing row loads alone does not speed up a
// shared scan. The vector kernel removes the compute wall: one masked
// 512-bit load per row chunk, then per query a VPXORQ+VPOPCNTQ pair and a
// horizontal sum — roughly 5× fewer instructions per (query, row) pair than
// the scalar loop. Requires AVX-512F plus the VPOPCNTDQ extension and OS
// support for ZMM state, detected at startup.

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0, the OS-enabled extended-state mask.
func xgetbv() (eax, edx uint32)

// hammingSelectMulti1 scores rows of wps ≤ 8 words (one masked 512-bit chunk
// per row) against nq queries packed with an 8-word stride.
//
//go:noescape
func hammingSelectMulti1(q *uint64, nq int, w *uint64, rows, wps int, mask uint64, bounds, idx, dist *int32, stride int, ns *int32)

// hammingSelectMulti2 scores rows of 9–16 words (a full chunk plus a masked
// tail chunk) against nq queries packed with a 16-word stride.
//
//go:noescape
func hammingSelectMulti2(q *uint64, nq int, w *uint64, rows, wps int, mask uint64, bounds, idx, dist *int32, stride int, ns *int32)

func init() {
	if detectAVX512() {
		selectMultiASM = selectMultiAVX512
	}
}

func detectAVX512() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return false
	}
	// XCR0 must enable SSE, AVX, and the three AVX-512 state components
	// (opmask, ZMM hi256, hi16 ZMM) or the kernel will fault on ZMM use.
	lo, _ := xgetbv()
	const zmmState = 0xE6
	if lo&zmmState != zmmState {
		return false
	}
	_, b7, c7, _ := cpuid(7, 0)
	const avx512f = 1 << 16   // EBX
	const vpopcntdq = 1 << 14 // ECX
	return b7&avx512f != 0 && c7&vpopcntdq != 0
}

func selectMultiAVX512(m *MultiSketch, arena []uint64, off, count int, bounds, idx, dist []int32, stride int, ns []int32) {
	w := arena[off : off+count*m.wps]
	if m.wps <= 8 {
		mask := uint64(1)<<m.wps - 1
		hammingSelectMulti1(&m.words[0], m.nq, &w[0], count, m.wps, mask,
			&bounds[0], &idx[0], &dist[0], stride, &ns[0])
		return
	}
	mask := uint64(1)<<(m.wps-8) - 1
	hammingSelectMulti2(&m.words[0], m.nq, &w[0], count, m.wps, mask,
		&bounds[0], &idx[0], &dist[0], stride, &ns[0])
}
