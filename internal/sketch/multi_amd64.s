// AVX-512 fused multi-query select kernels. Layout contract (see multi.go):
// queries are packed with a zero-padded stride of chunkWords(wps) words, so
// query-side chunk loads are full and unmasked; row-side chunk loads are
// masked to exactly wps words, so the final arena row never reads past the
// slice. Hits are written per query q at idx[q*stride+ns[q]] in ascending
// row order, matching the portable kernel bit for bit.

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func hammingSelectMulti1(q *uint64, nq int, w *uint64, rows, wps int,
//	mask uint64, bounds, idx, dist *int32, stride int, ns *int32)
//
// Single-chunk rows (wps ≤ 8). Register plan: R8 query base, SI row cursor,
// R9 row index, R10 stride, R11 row bytes, R12 bounds, R13 idx, R14 dist,
// R15 ns, DI/CX inner query cursor, AX distance, BX bound then hit slot,
// DX scratch. K1 masks the row load to wps words.
TEXT ·hammingSelectMulti1(SB), NOSPLIT, $0-88
	MOVQ q+0(FP), R8
	MOVQ w+16(FP), SI
	MOVQ wps+32(FP), R11
	SHLQ $3, R11
	MOVQ mask+40(FP), DX
	KMOVW DX, K1
	MOVQ bounds+48(FP), R12
	MOVQ idx+56(FP), R13
	MOVQ dist+64(FP), R14
	MOVQ stride+72(FP), R10
	MOVQ ns+80(FP), R15
	XORQ R9, R9
	CMPQ R9, rows+24(FP)
	JGE  done1

row1:
	VMOVDQU64.Z (SI), K1, Z0
	MOVQ R8, DI
	XORQ CX, CX

q1:
	VPXORQ   (DI), Z0, Z2
	VPOPCNTQ Z2, Z2

	// Horizontal sum of the eight 64-bit popcounts into AX.
	VEXTRACTI64X4 $1, Z2, Y3
	VPADDQ        Y3, Y2, Y2
	VEXTRACTI64X2 $1, Y2, X3
	VPADDQ        X3, X2, X2
	VPSRLDQ       $8, X2, X3
	VPADDQ        X3, X2, X2
	VMOVQ         X2, AX

	MOVLQSX (R12)(CX*4), BX
	CMPQ    AX, BX
	JGT     skip1

	// Hit: idx[q*stride+n] = row, dist[...] = h, ns[q]++.
	MOVLQSX (R15)(CX*4), DX
	MOVQ    CX, BX
	IMULQ   R10, BX
	ADDQ    DX, BX
	MOVL    R9, (R13)(BX*4)
	MOVL    AX, (R14)(BX*4)
	INCQ    DX
	MOVL    DX, (R15)(CX*4)

skip1:
	ADDQ $64, DI
	INCQ CX
	CMPQ CX, nq+8(FP)
	JLT  q1

	ADDQ R11, SI
	INCQ R9
	CMPQ R9, rows+24(FP)
	JLT  row1

done1:
	VZEROUPPER
	RET

// func hammingSelectMulti2(q *uint64, nq int, w *uint64, rows, wps int,
//	mask uint64, bounds, idx, dist *int32, stride int, ns *int32)
//
// Two-chunk rows (9 ≤ wps ≤ 16): a full first chunk and a tail chunk masked
// to wps−8 words. Queries are packed with a 16-word stride. Same register
// plan as hammingSelectMulti1.
TEXT ·hammingSelectMulti2(SB), NOSPLIT, $0-88
	MOVQ q+0(FP), R8
	MOVQ w+16(FP), SI
	MOVQ wps+32(FP), R11
	SHLQ $3, R11
	MOVL $0xFF, DX
	KMOVW DX, K1
	MOVQ mask+40(FP), DX
	KMOVW DX, K2
	MOVQ bounds+48(FP), R12
	MOVQ idx+56(FP), R13
	MOVQ dist+64(FP), R14
	MOVQ stride+72(FP), R10
	MOVQ ns+80(FP), R15
	XORQ R9, R9
	CMPQ R9, rows+24(FP)
	JGE  done2

row2:
	VMOVDQU64   (SI), Z0
	VMOVDQU64.Z 64(SI), K2, Z1
	MOVQ R8, DI
	XORQ CX, CX

q2:
	VPXORQ   (DI), Z0, Z2
	VPOPCNTQ Z2, Z2
	VPXORQ   64(DI), Z1, Z3
	VPOPCNTQ Z3, Z3
	VPADDQ   Z3, Z2, Z2

	VEXTRACTI64X4 $1, Z2, Y3
	VPADDQ        Y3, Y2, Y2
	VEXTRACTI64X2 $1, Y2, X3
	VPADDQ        X3, X2, X2
	VPSRLDQ       $8, X2, X3
	VPADDQ        X3, X2, X2
	VMOVQ         X2, AX

	MOVLQSX (R12)(CX*4), BX
	CMPQ    AX, BX
	JGT     skip2

	MOVLQSX (R15)(CX*4), DX
	MOVQ    CX, BX
	IMULQ   R10, BX
	ADDQ    DX, BX
	MOVL    R9, (R13)(BX*4)
	MOVL    AX, (R14)(BX*4)
	INCQ    DX
	MOVL    DX, (R15)(CX*4)

skip2:
	ADDQ $128, DI
	INCQ CX
	CMPQ CX, nq+8(FP)
	JLT  q2

	ADDQ R11, SI
	INCQ R9
	CMPQ R9, rows+24(FP)
	JLT  row2

done2:
	VZEROUPPER
	RET
