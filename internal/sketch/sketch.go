// Package sketch implements the Ferret toolkit's sketch construction
// (paper §4.1.1, Algorithms 1 and 2).
//
// A sketch is a compact N-bit vector computed from a high-dimensional
// feature vector such that the Hamming distance between two sketches
// estimates a (thresholded) weighted ℓ₁ distance between the original
// vectors. Construction draws N×K random (i, t) pairs — a dimension i
// sampled with probability proportional to wᵢ·(maxᵢ−minᵢ) and a threshold t
// uniform in [minᵢ, maxᵢ]. Each raw bit records whether vᵢ < t; groups of K
// raw bits are XOR-folded into one output bit, which dampens the
// contribution of large distances (the thresholding effect described in the
// paper: the bigger K, the stronger the dampening).
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"
)

// Params configures sketch construction for one feature space
// (paper §4.1.1: N, min[D], max[D], w[D], K).
type Params struct {
	// N is the sketch size in bits.
	N int
	// K is the threshold control: each output bit is the XOR of K raw
	// comparison bits. K = 1 (the paper's default) estimates the plain
	// weighted ℓ₁ distance; larger K dampens large distances.
	K int
	// Min and Max bound each of the D dimensions of the feature space.
	Min, Max []float32
	// W optionally weights the dimensions; nil means uniform weights.
	W []float32
	// Seed makes the random (i, t) pairs reproducible. Builders persisted
	// by the metadata store round-trip exactly regardless of seed.
	Seed int64
}

// Sketch is an N-bit vector packed into 64-bit words, little end first.
type Sketch []uint64

// Words returns the number of 64-bit words needed for n bits.
func Words(n int) int { return (n + 63) / 64 }

// Hamming returns the number of differing bits between two equal-length
// sketches. This is the engine's fast segment distance estimate, computed
// with XOR and popcount as in the paper.
func Hamming(a, b Sketch) int {
	if len(a) != len(b) {
		panic("sketch: length mismatch")
	}
	var h int
	for i := range a {
		h += bits.OnesCount64(a[i] ^ b[i])
	}
	return h
}

// Bit reports bit n of the sketch.
func (s Sketch) Bit(n int) bool { return s[n/64]&(1<<(n%64)) != 0 }

// HammingAt returns the Hamming distance between q and the equal-length
// sketch stored at word offset off inside a flat sketch arena. The bounds
// check is hoisted to a single sub-slice operation, so the popcount loop
// runs with no per-word checks and no per-sketch slice-header loads — the
// kernel the arena-backed filter scan is built on.
//ferret:noalloc
func HammingAt(q Sketch, arena []uint64, off int) int {
	w := arena[off : off+len(q)]
	var h int
	for i, qw := range q {
		h += bits.OnesCount64(qw ^ w[i])
	}
	return h
}

// HammingBatch computes the Hamming distances between q and count
// consecutive sketches packed back to back (stride len(q) words) in a flat
// arena starting at word offset off, writing the distances to dst[:count].
// Small word counts — the common sketch sizes — get unrolled inner loops.
//ferret:noalloc
func HammingBatch(q Sketch, arena []uint64, off, count int, dst []int32) {
	wps := len(q)
	if count == 0 {
		return
	}
	w := arena[off : off+count*wps]
	dst = dst[:count]
	switch wps {
	case 1:
		q0 := q[0]
		for i := range dst {
			dst[i] = int32(bits.OnesCount64(q0 ^ w[i]))
		}
	case 2:
		q0, q1 := q[0], q[1]
		for i := range dst {
			j := 2 * i
			dst[i] = int32(bits.OnesCount64(q0^w[j]) + bits.OnesCount64(q1^w[j+1]))
		}
	case 4:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		for i := range dst {
			j := 4 * i
			dst[i] = int32(bits.OnesCount64(q0^w[j]) + bits.OnesCount64(q1^w[j+1]) +
				bits.OnesCount64(q2^w[j+2]) + bits.OnesCount64(q3^w[j+3]))
		}
	default:
		for i := range dst {
			row := w[i*wps : i*wps+wps]
			var h int
			for k, qw := range q {
				h += bits.OnesCount64(qw ^ row[k])
			}
			dst[i] = int32(h)
		}
	}
}

// HammingSelect is the filter scan's fused kernel: it computes the Hamming
// distance between q and count consecutive sketches starting at word offset
// off, and records only the rows at or under bound — the block-relative row
// index into idx[n] and the distance into dist[n] — returning the hit count
// n. Misses (the overwhelming majority once the scan's k-nearest bound
// tightens) cost one compare and no stores, which is what lets the scan
// approach the raw XOR+popcount throughput of the arena sweep. idx and dist
// must each hold at least count values.
//ferret:noalloc
func HammingSelect(q Sketch, arena []uint64, off, count int, bound int32, idx, dist []int32) int {
	wps := len(q)
	if count == 0 {
		return 0
	}
	w := arena[off : off+count*wps]
	idx = idx[:count]
	dist = dist[:count]
	n := 0
	switch wps {
	case 1:
		q0 := q[0]
		for i := 0; i < count; i++ {
			if h := int32(bits.OnesCount64(q0 ^ w[i])); h <= bound {
				idx[n], dist[n] = int32(i), h
				n++
			}
		}
	case 2:
		q0, q1 := q[0], q[1]
		i, j := 0, 0
		// Two rows per iteration: halves the loop bookkeeping, and the two
		// row sums are independent dependency chains.
		for ; j+3 < len(w); i, j = i+2, j+4 {
			h0 := int32(bits.OnesCount64(q0^w[j]) + bits.OnesCount64(q1^w[j+1]))
			h1 := int32(bits.OnesCount64(q0^w[j+2]) + bits.OnesCount64(q1^w[j+3]))
			if h0 <= bound {
				idx[n], dist[n] = int32(i), h0
				n++
			}
			if h1 <= bound {
				idx[n], dist[n] = int32(i+1), h1
				n++
			}
		}
		for ; j+1 < len(w); i, j = i+1, j+2 {
			if h := int32(bits.OnesCount64(q0^w[j]) + bits.OnesCount64(q1^w[j+1])); h <= bound {
				idx[n], dist[n] = int32(i), h
				n++
			}
		}
	case 4:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		for i, j := 0, 0; j+3 < len(w); i, j = i+1, j+4 {
			if h := int32(bits.OnesCount64(q0^w[j]) + bits.OnesCount64(q1^w[j+1]) +
				bits.OnesCount64(q2^w[j+2]) + bits.OnesCount64(q3^w[j+3])); h <= bound {
				idx[n], dist[n] = int32(i), h
				n++
			}
		}
	default:
		for i := 0; i < count; i++ {
			row := w[i*wps : i*wps+wps]
			var h int32
			for k, qw := range q {
				h += int32(bits.OnesCount64(qw ^ row[k]))
			}
			if h <= bound {
				idx[n], dist[n] = int32(i), h
				n++
			}
		}
	}
	return n
}

// Builder holds the N×K random (i, t) pairs generated by Algorithm 1 and
// converts feature vectors to sketches via Algorithm 2. A Builder is
// immutable after construction and safe for concurrent use.
type Builder struct {
	n, k     int
	dim      int
	min, max []float32
	pairsI   []int32   // N*K sampled dimensions
	pairsT   []float32 // N*K sampled thresholds
	z        float64   // Σᵢ wᵢ·(maxᵢ−minᵢ): scale linking bit-flip probability to weighted ℓ₁
	w        []float32 // normalized dimension weights actually used
}

// NewBuilder runs Algorithm 1: it validates the parameters and draws the
// N×K random (i, t) pairs.
func NewBuilder(p Params) (*Builder, error) {
	if p.N <= 0 {
		return nil, errors.New("sketch: N must be positive")
	}
	if p.K <= 0 {
		p.K = 1
	}
	d := len(p.Min)
	if d == 0 || len(p.Max) != d {
		return nil, fmt.Errorf("sketch: min/max dimension mismatch (%d vs %d)", len(p.Min), len(p.Max))
	}
	w := p.W
	if w == nil {
		w = make([]float32, d)
		for i := range w {
			w[i] = 1
		}
	} else if len(w) != d {
		return nil, fmt.Errorf("sketch: weight dimension %d, want %d", len(w), d)
	}

	// pᵢ ∝ wᵢ·(maxᵢ−minᵢ), normalized (Algorithm 1). Dimensions with zero
	// range or zero weight are never sampled.
	prob := make([]float64, d)
	var z float64
	for i := 0; i < d; i++ {
		if p.Max[i] < p.Min[i] {
			return nil, fmt.Errorf("sketch: max[%d] < min[%d]", i, i)
		}
		if w[i] < 0 {
			return nil, fmt.Errorf("sketch: negative weight for dimension %d", i)
		}
		prob[i] = float64(w[i]) * float64(p.Max[i]-p.Min[i])
		z += prob[i]
	}
	if z <= 0 {
		return nil, errors.New("sketch: all dimensions have zero weight×range")
	}
	cum := make([]float64, d)
	var acc float64
	for i := 0; i < d; i++ {
		acc += prob[i] / z
		cum[i] = acc
	}
	cum[d-1] = 1 // guard against rounding

	rng := rand.New(rand.NewSource(p.Seed))
	total := p.N * p.K
	b := &Builder{
		n: p.N, k: p.K, dim: d,
		min:    append([]float32(nil), p.Min...),
		max:    append([]float32(nil), p.Max...),
		pairsI: make([]int32, total),
		pairsT: make([]float32, total),
		z:      z,
		w:      append([]float32(nil), w...),
	}
	for j := 0; j < total; j++ {
		r := rng.Float64()
		i := sort.SearchFloat64s(cum, r)
		if i >= d {
			i = d - 1
		}
		// Skip zero-probability dimensions the search may land on when
		// adjacent cumulative values are equal.
		//lint:ignore floatcmp zero-weight dimensions carry an exact 0 probability by construction
		for prob[i] == 0 && i+1 < d {
			i++
		}
		b.pairsI[j] = int32(i)
		b.pairsT[j] = p.Min[i] + float32(rng.Float64())*(p.Max[i]-p.Min[i])
	}
	return b, nil
}

// N returns the sketch size in bits.
func (b *Builder) N() int { return b.n }

// K returns the XOR-fold factor.
func (b *Builder) K() int { return b.k }

// Dim returns the feature-space dimensionality the builder was built for.
func (b *Builder) Dim() int { return b.dim }

// Scale returns Σᵢ wᵢ·(maxᵢ−minᵢ), the constant that converts a raw
// bit-difference probability into a weighted ℓ₁ distance.
func (b *Builder) Scale() float64 { return b.z }

// Build runs Algorithm 2: it converts a feature vector into an N-bit
// sketch. The vector's dimensionality must match the builder's.
func (b *Builder) Build(v []float32) Sketch {
	if len(v) != b.dim {
		panic(fmt.Sprintf("sketch: vector dimension %d, want %d", len(v), b.dim))
	}
	s := make(Sketch, Words(b.n))
	idx := 0
	for n := 0; n < b.n; n++ {
		var x uint64
		for k := 0; k < b.k; k++ {
			i := b.pairsI[idx]
			t := b.pairsT[idx]
			idx++
			if v[i] >= t {
				x ^= 1
			}
		}
		s[n/64] |= x << (n % 64)
	}
	return s
}

// BuildInto is Build with a caller-provided destination (len Words(N)),
// avoiding allocation in bulk-ingest loops.
func (b *Builder) BuildInto(dst Sketch, v []float32) {
	if len(v) != b.dim {
		panic(fmt.Sprintf("sketch: vector dimension %d, want %d", len(v), b.dim))
	}
	for i := range dst {
		dst[i] = 0
	}
	idx := 0
	for n := 0; n < b.n; n++ {
		var x uint64
		for k := 0; k < b.k; k++ {
			i := b.pairsI[idx]
			t := b.pairsT[idx]
			idx++
			if v[i] >= t {
				x ^= 1
			}
		}
		dst[n/64] |= x << (n % 64)
	}
}

// FlipProbability returns the probability q that one raw comparison bit
// differs between vectors a and b: the weighted ℓ₁ distance divided by the
// scale Σ wᵢ(maxᵢ−minᵢ). Entries are clamped to the [min, max] box first.
func (b *Builder) FlipProbability(a, v []float32) float64 {
	var s float64
	for i := range a {
		x := clamp(a[i], b.min[i], b.max[i])
		y := clamp(v[i], b.min[i], b.max[i])
		d := float64(x) - float64(y)
		if d < 0 {
			d = -d
		}
		s += float64(b.w[i]) * d
	}
	return s / b.z
}

// ExpectedHammingFraction returns the expected fraction of differing output
// bits for raw flip probability q: (1 − (1−2q)^K) / 2. For K = 1 this is q
// itself; larger K dampens large q toward 1/2.
func (b *Builder) ExpectedHammingFraction(q float64) float64 {
	return (1 - math.Pow(1-2*q, float64(b.k))) / 2
}

// EstimateL1 inverts the expected-Hamming relation to estimate the weighted
// ℓ₁ distance from an observed Hamming distance h. The estimate saturates at
// Scale()/2-equivalent distances when h approaches N/2 (the dampening region
// where, per the paper, precise large distances do not matter).
func (b *Builder) EstimateL1(h int) float64 {
	frac := float64(h) / float64(b.n)
	if frac >= 0.5 {
		frac = 0.5 - 1e-9
	}
	if b.k == 1 {
		// (1−(1−2q)^K)/2 inverts to q = frac for K = 1; skipping math.Pow
		// matters on estimator-heavy paths (rank pruning, BruteForceSketch).
		return frac * b.z
	}
	inner := 1 - 2*frac // (1−2q)^K
	q := (1 - math.Pow(inner, 1/float64(b.k))) / 2
	return q * b.z
}

func clamp(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// builderMagic identifies the Builder binary encoding.
const builderMagic = uint32(0xFE44E701)

// MarshalBinary encodes the builder's full state — sizes, bounds and the
// sampled (i, t) pairs — so a persisted database keeps producing identical
// sketches after restart.
func (b *Builder) MarshalBinary() ([]byte, error) {
	total := b.n * b.k
	size := 4 + 4*3 + 8 + b.dim*12 + total*8
	buf := make([]byte, size)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], builderMagic)
	le.PutUint32(buf[4:], uint32(b.n))
	le.PutUint32(buf[8:], uint32(b.k))
	le.PutUint32(buf[12:], uint32(b.dim))
	le.PutUint64(buf[16:], math.Float64bits(b.z))
	off := 24
	for i := 0; i < b.dim; i++ {
		le.PutUint32(buf[off:], math.Float32bits(b.min[i]))
		le.PutUint32(buf[off+4:], math.Float32bits(b.max[i]))
		le.PutUint32(buf[off+8:], math.Float32bits(b.w[i]))
		off += 12
	}
	for j := 0; j < total; j++ {
		le.PutUint32(buf[off:], uint32(b.pairsI[j]))
		le.PutUint32(buf[off+4:], math.Float32bits(b.pairsT[j]))
		off += 8
	}
	return buf, nil
}

// UnmarshalBinary decodes a builder encoded by MarshalBinary.
func (b *Builder) UnmarshalBinary(data []byte) error {
	le := binary.LittleEndian
	if len(data) < 24 || le.Uint32(data[0:]) != builderMagic {
		return errors.New("sketch: bad builder encoding")
	}
	n := int(le.Uint32(data[4:]))
	k := int(le.Uint32(data[8:]))
	dim := int(le.Uint32(data[12:]))
	z := math.Float64frombits(le.Uint64(data[16:]))
	total := n * k
	want := 24 + dim*12 + total*8
	if n <= 0 || k <= 0 || dim <= 0 || len(data) != want {
		return fmt.Errorf("sketch: builder encoding is %d bytes, want %d", len(data), want)
	}
	*b = Builder{
		n: n, k: k, dim: dim, z: z,
		min:    make([]float32, dim),
		max:    make([]float32, dim),
		w:      make([]float32, dim),
		pairsI: make([]int32, total),
		pairsT: make([]float32, total),
	}
	off := 24
	for i := 0; i < dim; i++ {
		b.min[i] = math.Float32frombits(le.Uint32(data[off:]))
		b.max[i] = math.Float32frombits(le.Uint32(data[off+4:]))
		b.w[i] = math.Float32frombits(le.Uint32(data[off+8:]))
		off += 12
	}
	for j := 0; j < total; j++ {
		i := int32(le.Uint32(data[off:]))
		if i < 0 || int(i) >= dim {
			return fmt.Errorf("sketch: pair dimension %d out of range", i)
		}
		b.pairsI[j] = i
		b.pairsT[j] = math.Float32frombits(le.Uint32(data[off+4:]))
		off += 8
	}
	return nil
}

// MarshalSketch encodes a sketch as little-endian words.
func MarshalSketch(s Sketch) []byte {
	buf := make([]byte, 8*len(s))
	for i, w := range s {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return buf
}

// UnmarshalSketch decodes a sketch encoded by MarshalSketch.
func UnmarshalSketch(data []byte) (Sketch, error) {
	if len(data)%8 != 0 {
		return nil, errors.New("sketch: encoding not a multiple of 8 bytes")
	}
	s := make(Sketch, len(data)/8)
	for i := range s {
		s[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	return s, nil
}
