package sketch

import "math/bits"

// Multi-query kernels. Under concurrent load the engine coalesces in-flight
// queries and scans the arena once for all of them: each packed row is loaded
// from memory a single time and scored against Q query sketches, so the
// per-query memory traffic drops from rows·wps·8 bytes to (rows·wps·8)/Q.
// On hosts where the scalar scan is compute-bound rather than bandwidth-bound
// the win instead comes from the vectorized fused-select kernel installed by
// the amd64 init (see multi_amd64.go), which keeps the whole row in vector
// registers while it scores every query.

// chunkWords rounds a word-per-sketch count up to a whole 8-word (512-bit)
// SIMD chunk.
func chunkWords(wps int) int { return (wps + 7) &^ 7 }

// MultiSketch packs Q equal-length query sketches into one flat buffer for
// the multi-query kernels. Each query occupies chunkWords(wps) words; the
// padding words are zero, so vector kernels can load full chunks from the
// query side without masking (zero XOR masked-zero row lanes contribute no
// popcount). Reset reuses the buffer across batches; the zero value is ready
// to use.
type MultiSketch struct {
	words []uint64
	nq    int
	wps   int
	pad   int // words per packed query, a multiple of 8
}

// Reset packs the given query sketches, which must all have the same word
// length, replacing the previous contents.
func (m *MultiSketch) Reset(qs []Sketch) {
	if len(qs) == 0 {
		m.nq, m.wps, m.pad = 0, 0, 0
		return
	}
	wps := len(qs[0])
	pad := chunkWords(wps)
	need := len(qs) * pad
	if cap(m.words) < need {
		m.words = make([]uint64, need)
	}
	m.words = m.words[:need]
	clear(m.words)
	for i, q := range qs {
		if len(q) != wps {
			panic("sketch: MultiSketch queries have mixed lengths")
		}
		copy(m.words[i*pad:], q)
	}
	m.nq, m.wps, m.pad = len(qs), wps, pad
}

// Len returns the number of packed queries.
func (m *MultiSketch) Len() int { return m.nq }

// Wps returns the per-sketch word length of the packed queries.
func (m *MultiSketch) Wps() int { return m.wps }

// query returns the unpadded view of packed query i.
func (m *MultiSketch) query(i int) Sketch {
	off := i * m.pad
	return Sketch(m.words[off : off+m.wps])
}

// HammingMultiAt computes the Hamming distance between every packed query
// and the single sketch stored at word offset off in a flat arena, writing
// dst[q] for each query. The row is loaded once and scored against all
// queries — the kernel behind the tombstone-aware shared scan.
//ferret:noalloc
func HammingMultiAt(m *MultiSketch, arena []uint64, off int, dst []int32) {
	w := arena[off : off+m.wps]
	dst = dst[:m.nq]
	switch m.wps {
	case 1:
		w0 := w[0]
		for q := range dst {
			dst[q] = int32(bits.OnesCount64(m.words[q*m.pad] ^ w0))
		}
	case 2:
		w0, w1 := w[0], w[1]
		for q := range dst {
			j := q * m.pad
			dst[q] = int32(bits.OnesCount64(m.words[j]^w0) + bits.OnesCount64(m.words[j+1]^w1))
		}
	default:
		for q := range dst {
			qw := m.words[q*m.pad : q*m.pad+m.wps]
			var h int
			for k, x := range qw {
				h += bits.OnesCount64(x ^ w[k])
			}
			dst[q] = int32(h)
		}
	}
}

// HammingMultiBatch computes the Hamming distances between every packed
// query and count consecutive sketches starting at word offset off, writing
// dst query-major: dst[q*count+i] is the distance from query q to row i.
// Rows are the outer loop, so each packed row is loaded from memory once for
// all Q queries. A single packed query falls back to the benchmarked serial
// kernel.
//ferret:noalloc
func HammingMultiBatch(m *MultiSketch, arena []uint64, off, count int, dst []int32) {
	if count == 0 || m.nq == 0 {
		return
	}
	if m.nq == 1 {
		HammingBatch(m.query(0), arena, off, count, dst)
		return
	}
	wps := m.wps
	w := arena[off : off+count*wps]
	dst = dst[:m.nq*count]
	switch wps {
	case 1:
		for i := 0; i < count; i++ {
			w0 := w[i]
			for q := 0; q < m.nq; q++ {
				dst[q*count+i] = int32(bits.OnesCount64(m.words[q*m.pad] ^ w0))
			}
		}
	case 2:
		for i := 0; i < count; i++ {
			w0, w1 := w[2*i], w[2*i+1]
			for q := 0; q < m.nq; q++ {
				j := q * m.pad
				dst[q*count+i] = int32(bits.OnesCount64(m.words[j]^w0) + bits.OnesCount64(m.words[j+1]^w1))
			}
		}
	default:
		for i := 0; i < count; i++ {
			row := w[i*wps : i*wps+wps]
			for q := 0; q < m.nq; q++ {
				qw := m.words[q*m.pad : q*m.pad+wps]
				var h int
				for k, x := range qw {
					h += bits.OnesCount64(x ^ row[k])
				}
				dst[q*count+i] = int32(h)
			}
		}
	}
}

// selectMultiASM, when non-nil, is a platform-specific vectorized
// implementation of the fused multi-query select. It is installed by init in
// multi_amd64.go when the CPU supports it and must produce output identical
// to the portable loop below (same hits, same ascending row order).
//ferret:noalloc
var selectMultiASM func(m *MultiSketch, arena []uint64, off, count int, bounds, idx, dist []int32, stride int, ns []int32)

// MultiKernel names the fused-select implementation in use ("avx512" or
// "scalar"), for logs and experiment output.
func MultiKernel() string {
	if selectMultiASM != nil {
		return "avx512"
	}
	return "scalar"
}

// HammingSelectMulti is the shared scan's fused kernel: for each packed
// query q it scores count consecutive sketches starting at word offset off
// and records the rows with distance at or under bounds[q] — block-relative
// row index into idx[q*stride+n], distance into dist[q*stride+n] — setting
// ns[q] to the hit count. A negative bound selects nothing. Hits appear in
// ascending row order, exactly as Q independent HammingSelect calls would
// produce, so per-query consumers cannot tell a shared scan from a private
// one. idx and dist must hold len(bounds)*stride values and stride must be
// at least count.
//ferret:noalloc
func HammingSelectMulti(m *MultiSketch, arena []uint64, off, count int, bounds, idx, dist []int32, stride int, ns []int32) {
	if len(bounds) != m.nq || len(ns) != m.nq {
		panic("sketch: HammingSelectMulti bounds/ns length mismatch")
	}
	for q := range ns {
		ns[q] = 0
	}
	if count == 0 || m.nq == 0 {
		return
	}
	if stride < count {
		panic("sketch: HammingSelectMulti stride shorter than block")
	}
	if m.nq == 1 {
		ns[0] = int32(HammingSelect(m.query(0), arena, off, count, bounds[0], idx[:stride], dist[:stride]))
		return
	}
	if selectMultiASM != nil && m.wps <= 16 {
		selectMultiASM(m, arena, off, count, bounds, idx, dist, stride, ns)
		return
	}
	hammingSelectMultiGeneric(m, arena, off, count, bounds, idx, dist, stride, ns)
}

// hammingSelectMultiGeneric is the portable fused select: rows outer, queries
// inner, so each row is loaded once per block regardless of Q.
//ferret:noalloc
func hammingSelectMultiGeneric(m *MultiSketch, arena []uint64, off, count int, bounds, idx, dist []int32, stride int, ns []int32) {
	wps := m.wps
	w := arena[off : off+count*wps]
	switch wps {
	case 2:
		for i := 0; i < count; i++ {
			w0, w1 := w[2*i], w[2*i+1]
			for q := 0; q < m.nq; q++ {
				j := q * m.pad
				h := int32(bits.OnesCount64(m.words[j]^w0) + bits.OnesCount64(m.words[j+1]^w1))
				if h <= bounds[q] {
					slot := q*stride + int(ns[q])
					idx[slot], dist[slot] = int32(i), h
					ns[q]++
				}
			}
		}
	default:
		for i := 0; i < count; i++ {
			row := w[i*wps : i*wps+wps]
			for q := 0; q < m.nq; q++ {
				qw := m.words[q*m.pad : q*m.pad+wps]
				var h int32
				for k, x := range qw {
					h += int32(bits.OnesCount64(x ^ row[k]))
				}
				if h <= bounds[q] {
					slot := q*stride + int(ns[q])
					idx[slot], dist[slot] = int32(i), h
					ns[q]++
				}
			}
		}
	}
}
