package sketch

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomRows(rng *rand.Rand, rows, wps int) []uint64 {
	w := make([]uint64, rows*wps)
	for i := range w {
		w[i] = rng.Uint64()
	}
	return w
}

func randomQueries(rng *rand.Rand, nq, wps int) []Sketch {
	qs := make([]Sketch, nq)
	for i := range qs {
		qs[i] = make(Sketch, wps)
		for k := range qs[i] {
			qs[i][k] = rng.Uint64()
		}
	}
	return qs
}

func TestHammingMultiAt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, wps := range []int{1, 2, 4, 10, 13, 17} {
		arena := randomRows(rng, 20, wps)
		for _, nq := range []int{1, 2, 5} {
			qs := randomQueries(rng, nq, wps)
			var m MultiSketch
			m.Reset(qs)
			dst := make([]int32, nq)
			for row := 0; row < 20; row++ {
				HammingMultiAt(&m, arena, row*wps, dst)
				for q := 0; q < nq; q++ {
					want := HammingAt(qs[q], arena, row*wps)
					if int(dst[q]) != want {
						t.Fatalf("wps=%d nq=%d row=%d q=%d: got %d want %d", wps, nq, row, q, dst[q], want)
					}
				}
			}
		}
	}
}

func TestHammingMultiBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, wps := range []int{1, 2, 4, 13, 17} {
		for _, nq := range []int{1, 2, 7} {
			for _, count := range []int{0, 1, 33} {
				arena := randomRows(rng, count+3, wps)
				off := 2 * wps
				qs := randomQueries(rng, nq, wps)
				var m MultiSketch
				m.Reset(qs)
				dst := make([]int32, nq*count)
				HammingMultiBatch(&m, arena, off, count, dst)
				want := make([]int32, count)
				for q := 0; q < nq; q++ {
					HammingBatch(qs[q], arena, off, count, want)
					for i := 0; i < count; i++ {
						if dst[q*count+i] != want[i] {
							t.Fatalf("wps=%d nq=%d count=%d q=%d i=%d: got %d want %d",
								wps, nq, count, q, i, dst[q*count+i], want[i])
						}
					}
				}
			}
		}
	}
}

// checkSelectMulti compares HammingSelectMulti against nq independent
// HammingSelect calls: identical hit counts, rows, and distances.
func checkSelectMulti(t *testing.T, rng *rand.Rand, wps, nq, count int) {
	t.Helper()
	arena := randomRows(rng, count+2, wps)
	off := wps // skip one row so off ≠ 0 is exercised
	qs := randomQueries(rng, nq, wps)
	var m MultiSketch
	m.Reset(qs)

	bounds := make([]int32, nq)
	for q := range bounds {
		// Mix no-hit (-1), sparse, and all-hit bounds.
		bounds[q] = int32(rng.Intn(wps*64+2)) - 1
	}
	stride := count + 1
	if count == 0 {
		stride = 1
	}
	idx := make([]int32, nq*stride)
	dist := make([]int32, nq*stride)
	ns := make([]int32, nq)
	HammingSelectMulti(&m, arena, off, count, bounds, idx, dist, stride, ns)

	wantIdx := make([]int32, stride)
	wantDist := make([]int32, stride)
	for q := 0; q < nq; q++ {
		wantN := HammingSelect(qs[q], arena, off, count, bounds[q], wantIdx, wantDist)
		if int(ns[q]) != wantN {
			t.Fatalf("wps=%d nq=%d count=%d q=%d bound=%d: %d hits, want %d",
				wps, nq, count, q, bounds[q], ns[q], wantN)
		}
		for k := 0; k < wantN; k++ {
			if idx[q*stride+k] != wantIdx[k] || dist[q*stride+k] != wantDist[k] {
				t.Fatalf("wps=%d nq=%d count=%d q=%d hit %d: got (%d,%d) want (%d,%d)",
					wps, nq, count, q, k, idx[q*stride+k], dist[q*stride+k], wantIdx[k], wantDist[k])
			}
		}
	}
}

func TestHammingSelectMulti(t *testing.T) {
	impls := []struct {
		name string
		asm  func(*MultiSketch, []uint64, int, int, []int32, []int32, []int32, int, []int32)
	}{{"scalar", nil}}
	if selectMultiASM != nil {
		impls = append(impls, struct {
			name string
			asm  func(*MultiSketch, []uint64, int, int, []int32, []int32, []int32, int, []int32)
		}{"avx512", selectMultiASM})
	}
	saved := selectMultiASM
	defer func() { selectMultiASM = saved }()

	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			selectMultiASM = impl.asm
			rng := rand.New(rand.NewSource(3))
			for _, wps := range []int{1, 2, 3, 7, 8, 9, 13, 16, 17} {
				for _, nq := range []int{1, 2, 3, 8} {
					for _, count := range []int{0, 1, 5, 257} {
						checkSelectMulti(t, rng, wps, nq, count)
					}
				}
			}
			// Many randomized shapes for the hit-slot bookkeeping.
			for i := 0; i < 200; i++ {
				checkSelectMulti(t, rng, 1+rng.Intn(17), 1+rng.Intn(9), rng.Intn(64))
			}
		})
	}
}

func TestMultiSketchReset(t *testing.T) {
	var m MultiSketch
	m.Reset(nil)
	if m.Len() != 0 {
		t.Fatalf("empty reset: Len=%d", m.Len())
	}
	rng := rand.New(rand.NewSource(4))
	qs := randomQueries(rng, 3, 13)
	m.Reset(qs)
	if m.Len() != 3 || m.Wps() != 13 || m.pad != 16 {
		t.Fatalf("Len=%d Wps=%d pad=%d", m.Len(), m.Wps(), m.pad)
	}
	for q := 0; q < 3; q++ {
		for k := 13; k < 16; k++ {
			if m.words[q*16+k] != 0 {
				t.Fatalf("pad word q=%d k=%d not zero", q, k)
			}
		}
	}
	// Reuse with fewer, shorter queries must re-zero padding.
	m.Reset(randomQueries(rng, 2, 2))
	if m.Len() != 2 || m.Wps() != 2 || m.pad != 8 {
		t.Fatalf("after reuse: Len=%d Wps=%d pad=%d", m.Len(), m.Wps(), m.pad)
	}
	for q := 0; q < 2; q++ {
		for k := 2; k < 8; k++ {
			if m.words[q*8+k] != 0 {
				t.Fatalf("stale pad word q=%d k=%d", q, k)
			}
		}
	}
}

// The multi-query benchmarks fix wps=13 (the 800-bit mixed-shape sketch) and
// compare one shared pass over the arena against Q independent serial scans.
// SetBytes reports arena bytes actually loaded per scan, so the B/s column
// shows the memory-traffic advantage of the shared pass directly.
const benchSelectBound = 340 // ~selective: well under the 416-bit mean

func benchRows(b *testing.B, rows, wps, nq int) ([]uint64, []Sketch) {
	rng := rand.New(rand.NewSource(5))
	return randomRows(rng, rows, wps), randomQueries(rng, nq, wps)
}

func BenchmarkHammingSelectMulti(b *testing.B) {
	const rows, wps = 4096, 13
	for _, nq := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("q%d", nq), func(b *testing.B) {
			arena, qs := benchRows(b, rows, wps, nq)
			var m MultiSketch
			m.Reset(qs)
			bounds := make([]int32, nq)
			for q := range bounds {
				bounds[q] = benchSelectBound
			}
			idx := make([]int32, nq*rows)
			dist := make([]int32, nq*rows)
			ns := make([]int32, nq)
			b.SetBytes(int64(rows * wps * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				HammingSelectMulti(&m, arena, 0, rows, bounds, idx, dist, rows, ns)
			}
		})
	}
}

func BenchmarkHammingSelectSerial(b *testing.B) {
	const rows, wps = 4096, 13
	for _, nq := range []int{1, 8} {
		b.Run(fmt.Sprintf("q%d", nq), func(b *testing.B) {
			arena, qs := benchRows(b, rows, wps, nq)
			idx := make([]int32, rows)
			dist := make([]int32, rows)
			b.SetBytes(int64(nq * rows * wps * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for q := 0; q < nq; q++ {
					HammingSelect(qs[q], arena, 0, rows, benchSelectBound, idx, dist)
				}
			}
		})
	}
}

func BenchmarkHammingMultiBatch(b *testing.B) {
	const rows, wps, nq = 4096, 13, 8
	arena, qs := benchRows(b, rows, wps, nq)
	var m MultiSketch
	m.Reset(qs)
	dst := make([]int32, nq*rows)
	b.SetBytes(int64(rows * wps * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HammingMultiBatch(&m, arena, 0, rows, dst)
	}
}
