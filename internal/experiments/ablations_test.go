package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationSketchK(t *testing.T) {
	rows, err := AblationSketchK(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgPrecision <= 0 || r.AvgPrecision > 1 {
			t.Errorf("%s: precision %g", r.Config, r.AvgPrecision)
		}
	}
}

func TestAblationEMD(t *testing.T) {
	rows, err := AblationEMD(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgPrecision <= 0 {
			t.Errorf("%s: precision %g", r.Config, r.AvgPrecision)
		}
	}
}

func TestAblationFilterParams(t *testing.T) {
	rows, err := AblationFilterParams(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	// More candidates never hurts quality within one r (up to noise); check
	// the r=4 row family is monotone-ish.
	var r4 []AblationRow
	for _, r := range rows {
		if strings.HasPrefix(r.Config, "r=4 ") {
			r4 = append(r4, r)
		}
	}
	if len(r4) != 3 {
		t.Fatalf("r=4 family: %d", len(r4))
	}
	if r4[2].AvgPrecision < r4[0].AvgPrecision-0.1 {
		t.Errorf("quality fell sharply with more candidates: %+v", r4)
	}
}

func TestAblationFilterPath(t *testing.T) {
	rows, err := AblationFilterPath(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.AvgPrecision <= 0 || r.Seconds <= 0 {
			t.Errorf("%s: %+v", r.Config, r)
		}
	}
	// Exact filtering cannot be worse in quality than the sketch path
	// (up to ranking ties).
	if rows[1].AvgPrecision < rows[0].AvgPrecision-0.05 {
		t.Errorf("exact path quality %g below sketch path %g", rows[1].AvgPrecision, rows[0].AvgPrecision)
	}
}

func TestAblationDurability(t *testing.T) {
	rows, err := AblationDurability(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Relaxed durability must be (much) faster than per-commit fsync.
	if rows[1].Seconds >= rows[0].Seconds {
		t.Errorf("relaxed (%gs) not faster than fsync-per-commit (%gs)",
			rows[1].Seconds, rows[0].Seconds)
	}
}

func TestAblationIndex(t *testing.T) {
	rows, err := AblationIndex(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Indexed filtering must retain most of the full scan's quality.
	if full, indexed := rows[0].AvgPrecision, rows[1].AvgPrecision; indexed < 0.7*full {
		t.Errorf("indexed quality %g vs full %g", indexed, full)
	}
}

func TestFprintAblations(t *testing.T) {
	var buf bytes.Buffer
	FprintAblations(&buf, []AblationRow{
		{Group: "g", Config: "a", AvgPrecision: 0.5, Seconds: -1},
		{Group: "g", Config: "b", AvgPrecision: -1, Seconds: 0.25},
	})
	out := buf.String()
	if !strings.Contains(out, "# g") || !strings.Contains(out, "avg_prec=0.500") ||
		!strings.Contains(out, "time=0.25000s") || strings.Contains(out, "avg_prec=-") {
		t.Fatalf("output:\n%s", out)
	}
}
