package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ferret/internal/synth"
)

// tiny is a minimal scale so the full experiment suite runs in seconds
// under go test.
func tiny() Scale {
	return Scale{
		Name:            "tiny",
		VARY:            synth.VARYOptions{Sets: 4, SetSize: 3, Distractors: 15, Seed: 101, WithBaseline: true},
		TIMIT:           synth.TIMITOptions{Sets: 3, Speakers: 3, Distractors: 6, Seed: 102},
		PSB:             synth.PSBOptions{Classes: 3, PerClass: 3, Seed: 103},
		MixedImageN:     300,
		AudioN:          200,
		MixedShapeN:     400,
		SpeedQueries:    2,
		SweepFractions:  []float64{0.5, 1.0},
		ImageSketchBits: []int{32, 96},
		AudioSketchBits: []int{128, 600},
		ShapeSketchBits: []int{128, 800},
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "small", "medium", "paper"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("galactic"); ok {
		t.Error("unknown scale resolved")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5 (Ferret×3 + 2 baselines)", len(rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Method] = r
		if r.AvgPrecision < 0 || r.AvgPrecision > 1 {
			t.Errorf("%s %s: precision %g", r.Dataset, r.Method, r.AvgPrecision)
		}
	}
	// Metadata sizes and ratios match the paper's structure.
	ferretImage := byKey["VARY Image/Ferret"]
	if ferretImage.FVBits != 448 || ferretImage.SketchBits != 96 {
		t.Errorf("image sizes: %+v", ferretImage)
	}
	ferretAudio := byKey["TIMIT Audio/Ferret"]
	if ferretAudio.FVBits != 6144 || ferretAudio.SketchBits != 600 {
		t.Errorf("audio sizes: %+v", ferretAudio)
	}
	ferretShape := byKey["PSB 3D Shape/Ferret"]
	if ferretShape.FVBits != 544*32 || ferretShape.SketchBits != 800 {
		t.Errorf("shape sizes: %+v", ferretShape)
	}
	// Headline relationship: region-based Ferret beats the global baseline
	// on the image benchmark.
	if ferretImage.AvgPrecision <= byKey["VARY Image/SIMPLIcity-like"].AvgPrecision {
		t.Errorf("Ferret (%.3f) did not beat the global baseline (%.3f)",
			ferretImage.AvgPrecision, byKey["VARY Image/SIMPLIcity-like"].AvgPrecision)
	}
	// SHD (exact distances) should be at least as good as sketched Ferret
	// on shapes, and close.
	shd := byKey["PSB 3D Shape/SHD"]
	if ferretShape.AvgPrecision < shd.AvgPrecision-0.25 {
		t.Errorf("sketched shape search (%.3f) too far below SHD (%.3f)",
			ferretShape.AvgPrecision, shd.AvgPrecision)
	}

	var buf bytes.Buffer
	FprintTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Ferret", "SIMPLIcity-like", "SHD", "4.7:1", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Benchmark != "Mixed image" || rows[2].Benchmark != "Mixed 3D shape" {
		t.Fatalf("rows: %+v", rows)
	}
	// Segment statistics match the paper's structure.
	if rows[0].AvgSegments < 8 || rows[0].AvgSegments > 13 {
		t.Errorf("image avg segments %.1f", rows[0].AvgSegments)
	}
	if rows[2].AvgSegments != 1 {
		t.Errorf("shape avg segments %.1f", rows[2].AvgSegments)
	}
	for _, r := range rows {
		if r.AvgSearchSec <= 0 {
			t.Errorf("%s: no time measured", r.Benchmark)
		}
	}
	var buf bytes.Buffer
	FprintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Mixed image") {
		t.Error("table output malformed")
	}
}

func TestFigure7(t *testing.T) {
	series, err := Figure7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d panels", len(series))
	}
	for _, s := range series {
		if len(s.Bits) != 2 || len(s.AvgPrecision) != 2 {
			t.Fatalf("%s: %d points", s.Dataset, len(s.Bits))
		}
		if s.OriginalPrecision <= 0 {
			t.Errorf("%s: original precision %g", s.Dataset, s.OriginalPrecision)
		}
		// The big sketch should be at least as good as the small one, up
		// to noise.
		if s.AvgPrecision[1] < s.AvgPrecision[0]-0.15 {
			t.Errorf("%s: quality decreased with sketch size: %v", s.Dataset, s.AvgPrecision)
		}
	}
	var buf bytes.Buffer
	FprintFigure7(&buf, series)
	if !strings.Contains(buf.String(), "sketch(bits)") {
		t.Error("figure output malformed")
	}
}

func TestFigure8(t *testing.T) {
	panels, err := Figure8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if len(p.Points) != 2*3 {
			t.Fatalf("%s: %d points", p.Dataset, len(p.Points))
		}
		for _, pt := range p.Points {
			if pt.Seconds <= 0 {
				t.Errorf("%s: zero time at n=%d mode=%v", p.Dataset, pt.N, pt.Mode)
			}
		}
	}
	var buf bytes.Buffer
	FprintFigure8(&buf, panels)
	if !strings.Contains(buf.String(), "Filtering") {
		t.Error("figure output malformed")
	}
}

func TestKnees(t *testing.T) {
	s := Fig7Series{
		Bits:              []int{32, 64, 96, 128},
		AvgPrecision:      []float64{0.3, 0.55, 0.62, 0.64},
		OriginalPrecision: 0.64,
	}
	low, high := s.Knees()
	if low != 64 || high != 128 {
		t.Fatalf("knees = %d, %d", low, high)
	}
}
