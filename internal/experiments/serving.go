package experiments

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"ferret/internal/core"
	"ferret/internal/kvstore"
	"ferret/internal/protocol"
	"ferret/internal/server"
	"ferret/internal/synth"
)

// ServingRow is one arm of the wire-level serving benchmark: closed-loop
// protocol clients over loopback TCP, speaking the binary protocol v2,
// against a server whose engine has the hot-query result cache either off or
// on. The hot arms replay a small key set (the cacheable regime the cache is
// for); the cold arms stride through the whole corpus so nearly every query
// misses. SpeedupVsUncached on the cached hot arm is the headline number —
// how much the cache buys on a hot working set, end to end through the
// protocol stack.
type ServingRow struct {
	Arm               string         `json:"arm"` // e.g. "hot-cached"
	Proto             string         `json:"proto"`
	Clients           int            `json:"clients"`
	Queries           int            `json:"queries"`
	WallSec           float64        `json:"wall_sec"`
	QPS               float64        `json:"qps"`
	Latency           LatencySummary `json:"latency"`
	HitRate           float64        `json:"hit_rate"`
	SpeedupVsUncached float64        `json:"speedup_vs_uncached,omitempty"`
}

// servingHotKeys is the hot working set size: small enough that the whole
// set stays resident in the result cache, large enough that the closed loop
// isn't a single-key pathological case.
const servingHotKeys = 16

// Serving measures end-to-end serving throughput over the wire on the
// mixed-shape speed corpus: real TCP connections, binary protocol v2, the
// pooled zero-copy encode path, with the result cache off and on. The corpus
// is ingested once; each cache arm reopens the same store.
func Serving(scale Scale) ([]ServingRow, error) {
	dt := mixedShapeType()
	objs := synth.MixedShapeObjects(scale.MixedShapeN, 301)
	perClient := 20 * scale.SpeedQueries
	const clients = 4

	// Hot set: a strided sample of corpus keys shared by every client.
	hot := make([]string, servingHotKeys)
	for i := range hot {
		hot[i] = objs[(i*len(objs)/servingHotKeys)%len(objs)].Key
	}
	// Cold workload: every key once, clients interleaved, so repeats within
	// a measurement window are rare and the cache stays cold.
	cold := make([]string, len(objs))
	for i := range objs {
		cold[i] = objs[i].Key
	}

	dir, err := os.MkdirTemp("", "ferret-exp-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	open := func(cache bool) (*core.Engine, error) {
		return core.Open(core.Config{
			Dir:           dir,
			Sketch:        dt.sketchCfg(dt.sketchBits),
			RankThreshold: dt.rankThresh,
			ResultCache:   core.ResultCacheParams{Enable: cache},
			Store:         kvstore.Options{Sync: kvstore.SyncPeriodic, SyncInterval: time.Minute},
		})
	}

	var rows []ServingRow
	ingested := false
	for _, cached := range []bool{false, true} {
		e, err := open(cached)
		if err != nil {
			return nil, err
		}
		if !ingested {
			for i := range objs {
				if _, err := e.Ingest(objs[i], nil); err != nil {
					e.Close()
					return nil, fmt.Errorf("experiments: ingest %s: %w", objs[i].Key, err)
				}
			}
			ingested = true
		}
		suffix := "uncached"
		if cached {
			suffix = "cached"
		}
		for _, arm := range []struct {
			name string
			keys []string
		}{
			{"hot-" + suffix, hot},
			{"cold-" + suffix, cold},
		} {
			row, err := measureServingArm(e, arm.keys, clients, perClient)
			if err != nil {
				e.Close()
				return nil, err
			}
			row.Arm = arm.name
			rows = append(rows, row)
		}
		if err := e.Close(); err != nil {
			return nil, err
		}
	}

	// Speedup of each cached arm relative to its uncached counterpart.
	ref := map[string]float64{}
	for _, r := range rows {
		switch r.Arm {
		case "hot-uncached":
			ref["hot-cached"] = r.QPS
		case "cold-uncached":
			ref["cold-cached"] = r.QPS
		}
	}
	for i := range rows {
		if base := ref[rows[i].Arm]; base > 0 {
			rows[i].SpeedupVsUncached = rows[i].QPS / base
		}
	}
	return rows, nil
}

// measureServingArm serves the engine on a loopback listener and runs
// `clients` v2 protocol connections, each issuing `perClient` QUERYs from
// the key list back to back.
func measureServingArm(e *core.Engine, keys []string, clients, perClient int) (ServingRow, error) {
	reg := e.Telemetry()
	hits0 := reg.Value("ferret_result_cache_hits_total")

	srv := &server.Server{Engine: e, DefaultK: 20}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServingRow{}, err
	}
	go srv.Serve(context.Background(), l)
	defer srv.Close()

	conns := make([]*protocol.Client, clients)
	for c := range conns {
		cl, err := protocol.Dial(l.Addr().String())
		if err != nil {
			return ServingRow{}, err
		}
		defer cl.Close()
		if err := cl.UpgradeV2(); err != nil {
			return ServingRow{}, fmt.Errorf("experiments: v2 upgrade: %w", err)
		}
		conns[c] = cl
	}

	lats := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := conns[c]
			secs := make([]float64, 0, perClient)
			params := protocol.QueryParams{K: 20, Mode: "filtering"}
			for i := 0; i < perClient; i++ {
				key := keys[(c+i*clients)%len(keys)]
				t0 := time.Now()
				if _, err := cl.Query(key, params); err != nil {
					errs[c] = err
					return
				}
				secs = append(secs, time.Since(t0).Seconds())
			}
			lats[c] = secs
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ServingRow{}, err
		}
	}

	var all []float64
	for _, s := range lats {
		all = append(all, s...)
	}
	row := ServingRow{
		Proto:   "v2",
		Clients: clients,
		Queries: len(all),
		WallSec: wall,
		Latency: summarizeLatencies(all),
	}
	if wall > 0 {
		row.QPS = float64(len(all)) / wall
	}
	row.Latency.QPS = row.QPS
	if row.Queries > 0 {
		row.HitRate = (reg.Value("ferret_result_cache_hits_total") - hits0) / float64(row.Queries)
	}
	return row, nil
}

// FprintServing renders the sweep as a table.
func FprintServing(w io.Writer, rows []ServingRow) {
	fmt.Fprintf(w, "%14s %6s %8s %8s %10s %10s %10s %8s %9s\n",
		"Arm", "Proto", "Clients", "Queries", "QPS", "p50(ms)", "p99(ms)", "HitRate", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%14s %6s %8d %8d %10.1f %10.3f %10.3f %7.1f%% %8.2fx\n",
			r.Arm, r.Proto, r.Clients, r.Queries, r.QPS,
			r.Latency.P50Sec*1e3, r.Latency.P99Sec*1e3,
			r.HitRate*100, r.SpeedupVsUncached)
	}
}
