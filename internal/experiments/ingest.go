package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"ferret/internal/core"
	"ferret/internal/kvstore"
	"ferret/internal/object"
	"ferret/internal/synth"
)

// IngestRow is one arm of the mixed read/write benchmark: closed-loop query
// clients against the segmented engine, first read-only, then with a
// sustained-rate ingest stream committing through the bounded queue while
// the background compactor seals and merges underneath. The headline number
// is QPSPenalty on the mixed arm — the fraction of read-only throughput the
// write stream costs, which the segment pipeline is designed to keep small
// (no stop-the-world compaction).
type IngestRow struct {
	Arm        string         `json:"arm"` // "read-only" or "mixed"
	Clients    int            `json:"clients"`
	Queries    int            `json:"queries"`
	WallSec    float64        `json:"wall_sec"`
	QPS        float64        `json:"qps"`
	Latency    LatencySummary `json:"latency"`
	IngestRate float64        `json:"ingest_rate,omitempty"` // achieved objects/sec
	Ingested   int            `json:"ingested,omitempty"`
	Seals      int64          `json:"seals,omitempty"`
	Merges     int64          `json:"merges,omitempty"`
	Rejected   int64          `json:"rejected,omitempty"`
	QPSPenalty float64        `json:"qps_penalty,omitempty"` // (avg readonly - mixed) / avg readonly
}

// ingestStreamRate paces the write stream (objects per second). The regime
// under test is a steady acquisition feed — seals and merges must happen
// during the measurement window — not a bulk load saturating the write
// lock. Each write costs sketch-construction CPU that on a small machine
// comes straight out of the query budget, so the rate is chosen to model a
// brisk scanner (several thousand objects per minute), not peak write
// bandwidth.
const ingestStreamRate = 100.0

// Ingest measures query throughput under sustained ingest on the
// mixed-shape speed corpus. The corpus is ingested into a segmented engine
// with a background compactor on a short interval, a read-only closed loop
// sets the baseline, then the same loop repeats while a paced writer
// streams fresh objects through the bounded ingest queue. Both arms run
// for a fixed wall-clock window (not a fixed query count) so the write
// side's seal/merge cadence is machine-independent: the tail capacity is
// sized to 1/8 of the objects the stream delivers per window, guaranteeing
// several seals — and therefore merge pressure — inside the measurement.
func Ingest(scale Scale) ([]IngestRow, error) {
	dt := mixedShapeType()
	objs := synth.MixedShapeObjects(scale.MixedShapeN, 301)
	queries := synth.MixedShapeObjects(64, 909)
	armDur := time.Duration(scale.SpeedQueries) * time.Second
	perWindow := int(ingestStreamRate * armDur.Seconds())
	stream := synth.MixedShapeObjects(2*perWindow, 555)
	for i := range stream {
		// The stream generator reuses the corpus key space; disambiguate so
		// the writes are inserts, not duplicate-key failures.
		stream[i].Key = "live-" + stream[i].Key + fmt.Sprintf("-%06d", i)
	}
	const clients = 4

	sealAt := perWindow / 8
	if sealAt < 64 {
		sealAt = 64
	}
	dir, err := os.MkdirTemp("", "ferret-exp-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	e, err := core.Open(core.Config{
		Dir:           dir,
		Sketch:        dt.sketchCfg(dt.sketchBits),
		RankThreshold: dt.rankThresh,
		Store:         kvstore.Options{Sync: kvstore.SyncPeriodic, SyncInterval: time.Minute},
		Segments: core.SegmentParams{
			SealEntries: sealAt,
			Interval:    25 * time.Millisecond,
			Pace:        500 * time.Microsecond,
		},
		// Two drain workers: the stream commits concurrently, so the arm
		// also exercises the ingest path's order-independence (the queue
		// serializes commits but not sketch construction).
		Ingest: core.IngestParams{Depth: 256, Workers: 2},
	})
	if err != nil {
		return nil, err
	}
	defer e.Close()
	for i := range objs {
		if _, err := e.Ingest(objs[i], nil); err != nil {
			return nil, fmt.Errorf("experiments: ingest %s: %w", objs[i].Key, err)
		}
	}

	// The stream grows the corpus while the mixed arm runs, so a single
	// before-baseline would charge the write stream for scan work that any
	// bigger corpus costs. Bracket instead: read-only before, mixed,
	// read-only after; the two baselines straddle the mixed arm's average
	// corpus size and their mean is the fair reference for the penalty —
	// which then measures interference (lock holds, seal/merge swaps,
	// compaction CPU), not growth.
	pre, err := measureIngestArm(e, queries, clients, armDur, nil)
	if err != nil {
		return nil, err
	}
	pre.Arm = "read-only"

	mixed, err := measureIngestArm(e, queries, clients, armDur, stream)
	if err != nil {
		return nil, err
	}
	mixed.Arm = "mixed"

	post, err := measureIngestArm(e, queries, clients, armDur, nil)
	if err != nil {
		return nil, err
	}
	post.Arm = "read-only+grown"

	if ref := (pre.QPS + post.QPS) / 2; ref > 0 {
		mixed.QPSPenalty = (ref - mixed.QPS) / ref
	}
	return []IngestRow{pre, mixed, post}, nil
}

// measureIngestArm runs the closed-loop query clients for the wall-clock
// window dur; with a non-nil stream it also runs the paced writer for the
// duration of the loop and folds the write-side counters into the row.
func measureIngestArm(e *core.Engine, queries []object.Object, clients int, dur time.Duration, stream []object.Object) (IngestRow, error) {
	reg := e.Telemetry()
	seals0 := reg.Value("ferret_seal_total")
	merges0 := reg.Value("ferret_merge_total")
	rejected0 := reg.Value("ferret_ingest_rejected_total")

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	ingested := 0
	var writerErr error
	if stream != nil {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			gap := time.Duration(float64(time.Second) / ingestStreamRate)
			next := time.Now()
			for _, o := range stream {
				select {
				case <-stop:
					return
				default:
				}
				if now := time.Now(); next.After(now) {
					time.Sleep(next.Sub(now))
				}
				next = next.Add(gap)
				if _, err := e.IngestQueued(context.Background(), o, nil); err != nil {
					writerErr = err
					return
				}
				ingested++
			}
		}()
	}

	lats := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var secs []float64
			opt := core.QueryOptions{Mode: core.Filtering, K: 20, Filter: speedFilter}
			for i := 0; time.Now().Before(deadline); i++ {
				q := queries[(c+i*clients)%len(queries)]
				t0 := time.Now()
				if _, err := e.Query(q, opt); err != nil {
					errs[c] = err
					return
				}
				secs = append(secs, time.Since(t0).Seconds())
			}
			lats[c] = secs
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	close(stop)
	writerWG.Wait()
	for _, err := range errs {
		if err != nil {
			return IngestRow{}, err
		}
	}
	if writerErr != nil {
		return IngestRow{}, fmt.Errorf("experiments: ingest stream: %w", writerErr)
	}

	var all []float64
	for _, s := range lats {
		all = append(all, s...)
	}
	row := IngestRow{
		Clients:  clients,
		Queries:  len(all),
		WallSec:  wall,
		Latency:  summarizeLatencies(all),
		Ingested: ingested,
		Seals:    int64(reg.Value("ferret_seal_total") - seals0),
		Merges:   int64(reg.Value("ferret_merge_total") - merges0),
		Rejected: int64(reg.Value("ferret_ingest_rejected_total") - rejected0),
	}
	if wall > 0 {
		row.QPS = float64(len(all)) / wall
		row.IngestRate = float64(ingested) / wall
	}
	row.Latency.QPS = row.QPS
	return row, nil
}

// FprintIngest renders the two arms as a table.
func FprintIngest(w io.Writer, rows []IngestRow) {
	fmt.Fprintf(w, "%10s %8s %8s %10s %10s %10s %9s %6s %6s %9s\n",
		"Arm", "Clients", "Queries", "QPS", "p50(ms)", "p99(ms)", "Ingest/s", "Seals", "Merges", "Penalty")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s %8d %8d %10.1f %10.2f %10.2f %9.1f %6d %6d %8.1f%%\n",
			r.Arm, r.Clients, r.Queries, r.QPS,
			r.Latency.P50Sec*1e3, r.Latency.P99Sec*1e3,
			r.IngestRate, r.Seals, r.Merges, r.QPSPenalty*100)
	}
}
