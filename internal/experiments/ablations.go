package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"ferret/internal/core"
	"ferret/internal/emd"
	"ferret/internal/evaltool"
	"ferret/internal/kvstore"
	"ferret/internal/synth"
	"ferret/internal/vector"
)

// Ablations quantify the design choices DESIGN.md calls out: the XOR-fold
// factor K of sketch construction, the improved-EMD variants, the filter
// parameters (r, k), the relaxed durability mode of the metadata store,
// and the optional bit-sampling segment index.

// AblationRow is one measurement: a configuration label with quality
// and/or timing numbers (negative values mean "not applicable").
type AblationRow struct {
	Group        string
	Config       string
	AvgPrecision float64
	Seconds      float64
}

// FprintAblations renders rows grouped by experiment.
func FprintAblations(w io.Writer, rows []AblationRow) {
	last := ""
	for _, r := range rows {
		if r.Group != last {
			fmt.Fprintf(w, "# %s\n", r.Group)
			last = r.Group
		}
		fmt.Fprintf(w, "  %-34s", r.Config)
		if r.AvgPrecision >= 0 {
			fmt.Fprintf(w, "  avg_prec=%.3f", r.AvgPrecision)
		}
		if r.Seconds >= 0 {
			fmt.Fprintf(w, "  time=%.5fs", r.Seconds)
		}
		fmt.Fprintln(w)
	}
}

// AblationSketchK measures how the XOR-fold factor K (the dampening
// control of Algorithms 1–2) affects search quality at a fixed sketch
// size, on the VARY image benchmark.
func AblationSketchK(scale Scale) ([]AblationRow, error) {
	vary, err := synth.VARY(scale.VARY)
	if err != nil {
		return nil, err
	}
	dt := imageType()
	var rows []AblationRow
	for _, k := range []int{1, 2, 4} {
		params := dt.sketchCfg(dt.sketchBits)
		params.K = k
		e, cleanup, err := tempEngine(core.Config{Sketch: params, RankThreshold: dt.rankThresh})
		if err != nil {
			return nil, err
		}
		for i := range vary.Objects {
			if _, err := e.Ingest(vary.Objects[i], nil); err != nil {
				cleanup()
				return nil, err
			}
		}
		rep, err := quality(e, vary.Sets, core.BruteForceSketch)
		cleanup()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Group:        "sketch XOR-fold K (96-bit sketches, VARY)",
			Config:       fmt.Sprintf("K=%d", k),
			AvgPrecision: rep.AvgPrecision,
			Seconds:      -1,
		})
	}
	return rows, nil
}

// AblationEMD compares the object-distance variants of §4.2.2 on the VARY
// benchmark with exact feature vectors: plain EMD, thresholded ground
// distance, square-root weighting, and both.
func AblationEMD(scale Scale) ([]AblationRow, error) {
	vary, err := synth.VARY(scale.VARY)
	if err != nil {
		return nil, err
	}
	dt := imageType()
	variants := []struct {
		name string
		opt  emd.Options
	}{
		{"plain EMD", emd.Options{Ground: vector.L1}},
		{"thresholded EMD (t=2)", emd.Options{Ground: vector.L1, Threshold: 2}},
		{"sqrt-weighted EMD", emd.Options{Ground: vector.L1, SqrtWeights: true}},
		{"thresholded + sqrt-weighted", emd.Options{Ground: vector.L1, Threshold: 2, SqrtWeights: true}},
	}
	var rows []AblationRow
	for _, v := range variants {
		cfg := core.Config{
			Sketch:         dt.sketchCfg(dt.sketchBits),
			ObjectDistance: emd.ObjectDistance(v.opt),
		}
		e, cleanup, err := tempEngine(cfg)
		if err != nil {
			return nil, err
		}
		for i := range vary.Objects {
			if _, err := e.Ingest(vary.Objects[i], nil); err != nil {
				cleanup()
				return nil, err
			}
		}
		rep, err := quality(e, vary.Sets, core.BruteForceOriginal)
		cleanup()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Group:        "object distance variants (exact vectors, VARY)",
			Config:       v.name,
			AvgPrecision: rep.AvgPrecision,
			Seconds:      -1,
		})
	}
	return rows, nil
}

// AblationFilterParams sweeps the filtering unit's r (query segments) and
// k (candidates per segment) on the VARY benchmark, reporting quality and
// per-query time — the tuning surface §5 tells system builders to explore.
func AblationFilterParams(scale Scale) ([]AblationRow, error) {
	vary, err := synth.VARY(scale.VARY)
	if err != nil {
		return nil, err
	}
	dt := imageType()
	e, cleanup, err := buildEngine(dt, dt.sketchBits, vary.Objects, nil)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	var rows []AblationRow
	for _, r := range []int{1, 2, 4, 8} {
		for _, k := range []int{10, 50, 200} {
			runner := &evaltool.Runner{Engine: e, Options: core.QueryOptions{
				Mode:   core.Filtering,
				Filter: core.FilterParams{QuerySegments: r, NearestPerSegment: k},
			}}
			rep, err := runner.Run(vary.Sets)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{
				Group:        "filter parameters r × k (Filtering, VARY)",
				Config:       fmt.Sprintf("r=%d k=%d", r, k),
				AvgPrecision: rep.AvgPrecision,
				Seconds:      rep.AvgQueryTime.Seconds(),
			})
		}
	}
	return rows, nil
}

// AblationFilterPath compares the filtering unit's two paths from §4.1.1 —
// comparing sketches vs computing the segment distance function directly
// against all feature-vector metadata — on quality and per-query time.
func AblationFilterPath(scale Scale) ([]AblationRow, error) {
	vary, err := synth.VARY(scale.VARY)
	if err != nil {
		return nil, err
	}
	dt := imageType()
	e, cleanup, err := buildEngine(dt, dt.sketchBits, vary.Objects, nil)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	var rows []AblationRow
	for _, mode := range []struct {
		name  string
		exact bool
	}{
		{"sketch comparison (Hamming)", false},
		{"exact segment distance", true},
	} {
		runner := &evaltool.Runner{Engine: e, Options: core.QueryOptions{
			Mode:   core.Filtering,
			Filter: core.FilterParams{QuerySegments: 4, NearestPerSegment: 50, ExactDistance: mode.exact},
		}}
		rep, err := runner.Run(vary.Sets)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Group:        "filter path (Filtering, VARY)",
			Config:       mode.name,
			AvgPrecision: rep.AvgPrecision,
			Seconds:      rep.AvgQueryTime.Seconds(),
		})
	}
	return rows, nil
}

// AblationDurability measures ingest throughput under the two durability
// policies of §4.1.3: per-commit fsync vs periodic sync.
func AblationDurability(scale Scale) ([]AblationRow, error) {
	objs := synth.MixedImageObjects(min(scale.MixedImageN, 2000), 404)
	dt := imageType()
	var rows []AblationRow
	for _, mode := range []struct {
		name string
		sync kvstore.SyncPolicy
	}{
		{"fsync every commit", kvstore.SyncEveryCommit},
		{"periodic sync (relaxed ACID)", kvstore.SyncPeriodic},
	} {
		dir, err := os.MkdirTemp("", "ferret-abl-*")
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			Dir:    dir,
			Store:  kvstore.Options{Sync: mode.sync, SyncInterval: time.Second},
			Sketch: dt.sketchCfg(dt.sketchBits),
		}
		e, err := core.Open(cfg)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		start := time.Now()
		for i := range objs {
			if _, err := e.Ingest(objs[i], nil); err != nil {
				e.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		elapsed := time.Since(start).Seconds()
		e.Close()
		os.RemoveAll(dir)
		rows = append(rows, AblationRow{
			Group:        fmt.Sprintf("metadata durability (ingest %d objects)", len(objs)),
			Config:       mode.name,
			AvgPrecision: -1,
			Seconds:      elapsed,
		})
	}
	return rows, nil
}

// AblationIndex compares the filtering unit's full sketch scan against the
// multi-table Hamming index (the §8 "improved indexing" extension):
// quality and per-query time on the VARY benchmark plus per-query time on
// the Mixed image speed dataset.
func AblationIndex(scale Scale) ([]AblationRow, error) {
	vary, err := synth.VARY(scale.VARY)
	if err != nil {
		return nil, err
	}
	dt := imageType()
	var rows []AblationRow
	for _, mode := range []struct {
		name  string
		index core.HIndexParams
	}{
		{"full sketch scan", core.HIndexParams{}},
		{"multi-table Hamming index", core.HIndexParams{Enable: true}},
	} {
		cfg := core.Config{
			Sketch:        dt.sketchCfg(dt.sketchBits),
			RankThreshold: dt.rankThresh,
			HIndex:        mode.index,
		}
		e, cleanup, err := tempEngine(cfg)
		if err != nil {
			return nil, err
		}
		for i := range vary.Objects {
			if _, err := e.Ingest(vary.Objects[i], nil); err != nil {
				cleanup()
				return nil, err
			}
		}
		start := time.Now()
		rep, err := quality(e, vary.Sets, core.Filtering)
		if err != nil {
			cleanup()
			return nil, err
		}
		sec := time.Since(start).Seconds() / float64(max(rep.Queries, 1))
		cleanup()
		rows = append(rows, AblationRow{
			Group:        "filtering accelerator (VARY quality + time)",
			Config:       mode.name,
			AvgPrecision: rep.AvgPrecision,
			Seconds:      sec,
		})
	}

	// Speed-only comparison on the larger mixed dataset.
	objs := synth.MixedImageObjects(min(scale.MixedImageN, 10000), 405)
	queries := synth.MixedImageObjects(scale.SpeedQueries, 906)
	for _, mode := range []struct {
		name  string
		index core.HIndexParams
	}{
		{"full sketch scan", core.HIndexParams{}},
		{"multi-table Hamming index", core.HIndexParams{Enable: true}},
	} {
		cfg := core.Config{Sketch: dt.sketchCfg(dt.sketchBits), HIndex: mode.index}
		e, cleanup, err := tempEngine(cfg)
		if err != nil {
			return nil, err
		}
		for i := range objs {
			if _, err := e.Ingest(objs[i], nil); err != nil {
				cleanup()
				return nil, err
			}
		}
		sec, err := avgQuerySeconds(e, queries, core.Filtering, 20)
		cleanup()
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Group:        fmt.Sprintf("filtering accelerator (Mixed image, %d objects)", len(objs)),
			Config:       mode.name,
			AvgPrecision: -1,
			Seconds:      sec,
		})
	}
	return rows, nil
}

// Ablations runs the full suite.
func Ablations(scale Scale) ([]AblationRow, error) {
	var all []AblationRow
	for _, f := range []func(Scale) ([]AblationRow, error){
		AblationSketchK, AblationEMD, AblationFilterParams, AblationFilterPath,
		AblationDurability, AblationIndex,
	} {
		rows, err := f(scale)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
