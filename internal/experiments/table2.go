package experiments

import (
	"fmt"
	"io"

	"ferret/internal/core"
	"ferret/internal/object"
	"ferret/internal/synth"
)

// Table2Row is one row of the paper's Table 2: search speed with sketching
// and filtering on, extended with the per-query latency distribution and
// the ranking unit's work counters. EMDEvals counts full object-distance
// evaluations over the measured queries; EMDPruned and EMDAbandoned count
// candidates skipped by the sketch lower bound and solves cut short by the
// exact-cost bound — pruning changes these counters, never the ranked
// results.
type Table2Row struct {
	Benchmark    string         `json:"benchmark"`
	Objects      int            `json:"objects"`
	AvgSegments  float64        `json:"avg_segments"`
	AvgSearchSec float64        `json:"avg_search_sec"`
	Latency      LatencySummary `json:"latency"`
	EMDEvals     int64          `json:"emd_evals"`
	EMDPruned    int64          `json:"emd_pruned"`
	EMDAbandoned int64          `json:"emd_abandoned"`
}

// speedDataset couples a feature-level object generator with its engine
// parameters for the speed experiments.
type speedDataset struct {
	dt  dataType
	n   int
	gen func(n int, seed int64) []object.Object
}

func speedDatasets(scale Scale) []speedDataset {
	return []speedDataset{
		{dt: imageType(), n: scale.MixedImageN, gen: synth.MixedImageObjects},
		{dt: mixedAudioType(), n: scale.AudioN, gen: synth.MixedAudioObjects},
		{dt: mixedShapeType(), n: scale.MixedShapeN, gen: synth.MixedShapeObjects},
	}
}

// speedRowName maps the dataset to the paper's Table 2 naming.
func speedRowName(dt dataType) string {
	switch dt.name {
	case "VARY Image":
		return "Mixed image"
	case "TIMIT Audio":
		return "TIMIT Audio"
	default:
		return dt.name
	}
}

// Table2 reproduces the search-speed table: average query time with the
// sketching and filtering mechanism turned on, per benchmark dataset.
func Table2(scale Scale) ([]Table2Row, error) {
	var rows []Table2Row
	for _, ds := range speedDatasets(scale) {
		objs := ds.gen(ds.n, 301)
		queries := ds.gen(scale.SpeedQueries, 909)
		e, cleanup, err := buildEngine(ds.dt, ds.dt.sketchBits, objs, nil)
		if err != nil {
			return nil, err
		}
		reg := e.Telemetry()
		evals0 := reg.Value("ferret_rank_distance_evals_total")
		pruned0 := reg.Value("ferret_rank_emd_pruned_total")
		abandoned0 := reg.Value("ferret_rank_emd_abandoned_total")
		lat, err := measureQueries(e, queries, core.Filtering, 20)
		evals := int64(reg.Value("ferret_rank_distance_evals_total") - evals0)
		pruned := int64(reg.Value("ferret_rank_emd_pruned_total") - pruned0)
		abandoned := int64(reg.Value("ferret_rank_emd_abandoned_total") - abandoned0)
		cleanup()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Benchmark:    speedRowName(ds.dt),
			Objects:      ds.n,
			AvgSegments:  synth.AvgSegments(objs),
			AvgSearchSec: lat.MeanSec,
			Latency:      lat,
			EMDEvals:     evals,
			EMDPruned:    pruned,
			EMDAbandoned: abandoned,
		})
	}
	return rows, nil
}

// FprintTable2 renders rows in the paper's layout.
func FprintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-16s %10s %14s %16s %12s %12s %10s %10s %10s\n",
		"Benchmark", "Objects", "AvgSegs/Obj", "AvgSearch(s)", "p50(s)", "p99(s)", "QPS", "EMDEvals", "EMDPruned")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10d %14.1f %16.4f %12.4f %12.4f %10.1f %10d %10d\n",
			r.Benchmark, r.Objects, r.AvgSegments, r.AvgSearchSec,
			r.Latency.P50Sec, r.Latency.P99Sec, r.Latency.QPS, r.EMDEvals, r.EMDPruned)
	}
}
