package experiments

import (
	"fmt"
	"io"

	"ferret/internal/core"
	"ferret/internal/object"
	"ferret/internal/synth"
)

// Table2Row is one row of the paper's Table 2: search speed with sketching
// and filtering on.
type Table2Row struct {
	Benchmark    string
	Objects      int
	AvgSegments  float64
	AvgSearchSec float64
}

// speedDataset couples a feature-level object generator with its engine
// parameters for the speed experiments.
type speedDataset struct {
	dt  dataType
	n   int
	gen func(n int, seed int64) []object.Object
}

func speedDatasets(scale Scale) []speedDataset {
	return []speedDataset{
		{dt: imageType(), n: scale.MixedImageN, gen: synth.MixedImageObjects},
		{dt: mixedAudioType(), n: scale.AudioN, gen: synth.MixedAudioObjects},
		{dt: mixedShapeType(), n: scale.MixedShapeN, gen: synth.MixedShapeObjects},
	}
}

// speedRowName maps the dataset to the paper's Table 2 naming.
func speedRowName(dt dataType) string {
	switch dt.name {
	case "VARY Image":
		return "Mixed image"
	case "TIMIT Audio":
		return "TIMIT Audio"
	default:
		return dt.name
	}
}

// Table2 reproduces the search-speed table: average query time with the
// sketching and filtering mechanism turned on, per benchmark dataset.
func Table2(scale Scale) ([]Table2Row, error) {
	var rows []Table2Row
	for _, ds := range speedDatasets(scale) {
		objs := ds.gen(ds.n, 301)
		queries := ds.gen(scale.SpeedQueries, 909)
		e, cleanup, err := buildEngine(ds.dt, ds.dt.sketchBits, objs, nil)
		if err != nil {
			return nil, err
		}
		sec, err := avgQuerySeconds(e, queries, core.Filtering, 20)
		cleanup()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Benchmark:    speedRowName(ds.dt),
			Objects:      ds.n,
			AvgSegments:  synth.AvgSegments(objs),
			AvgSearchSec: sec,
		})
	}
	return rows, nil
}

// FprintTable2 renders rows in the paper's layout.
func FprintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-16s %10s %14s %16s\n", "Benchmark", "Objects", "AvgSegs/Obj", "AvgSearch(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10d %14.1f %16.4f\n", r.Benchmark, r.Objects, r.AvgSegments, r.AvgSearchSec)
	}
}
