package experiments

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"ferret/internal/core"
	"ferret/internal/object"
)

// LatencySummary condenses a batch of per-query wall-clock timings into the
// shape machine consumers want: mean, tail percentiles and throughput.
type LatencySummary struct {
	Queries int     `json:"queries"`
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P90Sec  float64 `json:"p90_sec"`
	P99Sec  float64 `json:"p99_sec"`
	QPS     float64 `json:"qps"`
}

// summarizeLatencies computes a LatencySummary over per-query durations in
// seconds (the slice is sorted in place).
func summarizeLatencies(secs []float64) LatencySummary {
	if len(secs) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(secs)
	total := 0.0
	for _, s := range secs {
		total += s
	}
	s := LatencySummary{
		Queries: len(secs),
		MeanSec: total / float64(len(secs)),
		P50Sec:  percentileSorted(secs, 0.50),
		P90Sec:  percentileSorted(secs, 0.90),
		P99Sec:  percentileSorted(secs, 0.99),
	}
	if total > 0 {
		s.QPS = float64(len(secs)) / total
	}
	return s
}

// percentileSorted is the nearest-rank percentile of an ascending slice.
func percentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// measureQueries runs the query objects against the engine in the given
// mode, timing each query individually, and summarizes the latencies.
func measureQueries(e *core.Engine, queries []object.Object, mode core.Mode, k int) (LatencySummary, error) {
	secs := make([]float64, 0, len(queries))
	for i := range queries {
		opt := core.QueryOptions{Mode: mode, K: k, Filter: speedFilter}
		start := time.Now()
		if _, err := e.Query(queries[i], opt); err != nil {
			return LatencySummary{}, err
		}
		secs = append(secs, time.Since(start).Seconds())
	}
	return summarizeLatencies(secs), nil
}

// ExperimentResult is one experiment's machine-readable output: its name,
// wall-clock runtime and the experiment-specific rows.
type ExperimentResult struct {
	Name       string  `json:"name"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Rows       any     `json:"rows"`
}

// Summary is the ferret-bench -json document.
type Summary struct {
	Scale   string             `json:"scale"`
	Results []ExperimentResult `json:"results"`
}

// Add records one finished experiment.
func (s *Summary) Add(name string, elapsed time.Duration, rows any) {
	s.Results = append(s.Results, ExperimentResult{
		Name:       name,
		ElapsedSec: elapsed.Seconds(),
		Rows:       rows,
	})
}

// WriteJSON renders the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
