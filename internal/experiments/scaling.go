package experiments

import (
	"fmt"
	"io"

	"ferret/internal/core"
	"ferret/internal/object"
	"ferret/internal/synth"
)

// The scaling sweep gates the sub-linear filter claim: on the mixed-shape
// speed corpus, grow the dataset through scale.SweepFractions and at each
// size run the same queries against two engines over identical data — one
// with the plain arena scan, one with the multi-table Hamming index — and
// compare the filter stage directly. The index is an accelerator, not an
// approximation, so the sweep also asserts bit-identical results at every
// point; a row with identical=false is a correctness bug, not a tuning
// problem. Committed as part of BENCH_7.json, the sweep fails `make
// check-bench` if the indexed filter stops beating the scan (see
// ferret-benchcmp).

// ScalingPoint is one dataset size of the sweep: both arms' mean
// filter-stage time, the speedup, and the index's work profile at that
// size.
type ScalingPoint struct {
	N       int `json:"n"`       // objects ingested at this point
	Queries int `json:"queries"` // measured queries (repeats included)

	ScanFilterSec  float64 `json:"scan_filter_sec"`  // mean filter-stage seconds, scan arm
	IndexFilterSec float64 `json:"index_filter_sec"` // mean filter-stage seconds, index arm
	Speedup        float64 `json:"speedup"`          // scan / index filter time

	// CandidateFrac is rows verified per row the scan would have streamed
	// (ferret_hindex_candidates_total / ferret_hindex_baseline_rows_total
	// over the point's probes): the index's candidate-reduction ratio.
	CandidateFrac float64 `json:"candidate_frac"`
	// IndexServed is the fraction of query segments the index answered
	// (the rest fell back to the scan via the cost model or coverage).
	IndexServed float64 `json:"index_served_frac"`
	LoadFactor  float64 `json:"load_factor"` // index table occupancy after ingest

	Identical bool `json:"identical"` // both arms returned bit-identical answers
}

// scalingRepeats re-runs the query list per measurement point so the mean
// filter time sits on more than a handful of samples at small scales.
const scalingRepeats = 3

// Scaling runs the corpus-size sweep on the mixed-shape speed dataset.
func Scaling(scale Scale) ([]ScalingPoint, error) {
	dt := mixedShapeType()
	objs := synth.MixedShapeObjects(scale.MixedShapeN, 301)
	queries := synth.MixedShapeObjects(scale.SpeedQueries, 909)

	base := core.Config{Sketch: dt.sketchCfg(dt.sketchBits), RankThreshold: dt.rankThresh}
	scanCfg := base
	idxCfg := base
	idxCfg.HIndex = core.HIndexParams{Enable: true}

	scanE, scanCleanup, err := tempEngine(scanCfg)
	if err != nil {
		return nil, err
	}
	defer scanCleanup()
	idxE, idxCleanup, err := tempEngine(idxCfg)
	if err != nil {
		return nil, err
	}
	defer idxCleanup()

	var points []ScalingPoint
	ingested := 0
	for _, frac := range scale.SweepFractions {
		target := int(frac * float64(scale.MixedShapeN))
		for ; ingested < target && ingested < len(objs); ingested++ {
			if _, err := scanE.Ingest(objs[ingested], nil); err != nil {
				return nil, err
			}
			if _, err := idxE.Ingest(objs[ingested], nil); err != nil {
				return nil, err
			}
		}
		pt, err := measureScalingPoint(scanE, idxE, queries, ingested)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// filterStage reads the filter-stage histogram's running (sum, count) so a
// measurement can be expressed as a delta across its queries.
func filterStage(e *core.Engine) (sum, count float64) {
	reg := e.Telemetry()
	return reg.Value("ferret_query_stage_seconds_filter_sum"),
		reg.Value("ferret_query_stage_seconds_filter_count")
}

func measureScalingPoint(scanE, idxE *core.Engine, queries []object.Object, n int) (ScalingPoint, error) {
	opt := core.QueryOptions{Mode: core.Filtering, K: 20, Filter: speedFilter}
	idxReg := idxE.Telemetry()

	scanSum0, scanCnt0 := filterStage(scanE)
	idxSum0, idxCnt0 := filterStage(idxE)
	probes0 := idxReg.Value("ferret_hindex_probes_total")
	cands0 := idxReg.Value("ferret_hindex_candidates_total")
	fallback0 := idxReg.Value("ferret_hindex_fallback_total")
	baseline0 := idxReg.Value("ferret_hindex_baseline_rows_total")

	pt := ScalingPoint{N: n, Identical: true}
	for rep := 0; rep < scalingRepeats; rep++ {
		for _, q := range queries {
			scanRes, err := scanE.Query(q, opt)
			if err != nil {
				return pt, err
			}
			idxRes, err := idxE.Query(q, opt)
			if err != nil {
				return pt, err
			}
			pt.Queries++
			if len(scanRes) != len(idxRes) {
				pt.Identical = false
				continue
			}
			for i := range scanRes {
				if scanRes[i].ID != idxRes[i].ID || scanRes[i].Distance != idxRes[i].Distance { //lint:ignore floatcmp the sweep asserts bit-identical answers, not approximate ones

					pt.Identical = false
					break
				}
			}
		}
	}

	scanSum, scanCnt := filterStage(scanE)
	idxSum, idxCnt := filterStage(idxE)
	if dc := scanCnt - scanCnt0; dc > 0 {
		pt.ScanFilterSec = (scanSum - scanSum0) / dc
	}
	if dc := idxCnt - idxCnt0; dc > 0 {
		pt.IndexFilterSec = (idxSum - idxSum0) / dc
	}
	if pt.IndexFilterSec > 0 {
		pt.Speedup = pt.ScanFilterSec / pt.IndexFilterSec
	}
	if db := idxReg.Value("ferret_hindex_baseline_rows_total") - baseline0; db > 0 {
		pt.CandidateFrac = (idxReg.Value("ferret_hindex_candidates_total") - cands0) / db
	}
	probes := idxReg.Value("ferret_hindex_probes_total") - probes0
	fallbacks := idxReg.Value("ferret_hindex_fallback_total") - fallback0
	if attempts := probes + fallbacks; attempts > 0 {
		// fallback counts both cost-model rejections (never probed) and
		// post-verify coverage failures (probed, then re-scanned); served
		// segments are the attempts that did not fall back.
		pt.IndexServed = (attempts - fallbacks) / attempts
		if pt.IndexServed < 0 {
			pt.IndexServed = 0
		}
	}
	pt.LoadFactor = idxE.Stat().HIndexLoad
	return pt, nil
}

// FprintScaling renders the sweep as a table.
func FprintScaling(w io.Writer, points []ScalingPoint) {
	fmt.Fprintf(w, "%10s %8s %13s %13s %9s %10s %9s %7s %10s\n",
		"objects", "queries", "scan(ms)", "index(ms)", "speedup", "cand-frac", "ix-served", "load", "identical")
	for _, p := range points {
		fmt.Fprintf(w, "%10d %8d %13.3f %13.3f %8.2fx %10.4f %9.2f %7.2f %10v\n",
			p.N, p.Queries, p.ScanFilterSec*1e3, p.IndexFilterSec*1e3,
			p.Speedup, p.CandidateFrac, p.IndexServed, p.LoadFactor, p.Identical)
	}
}
