package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSummarizeLatencies(t *testing.T) {
	secs := make([]float64, 100)
	for i := range secs {
		secs[i] = float64(i+1) / 1000 // 1ms .. 100ms
	}
	s := summarizeLatencies(secs)
	if s.Queries != 100 {
		t.Fatalf("queries = %d", s.Queries)
	}
	if s.P50Sec != 0.050 {
		t.Errorf("p50 = %g, want 0.050", s.P50Sec)
	}
	if s.P90Sec != 0.090 {
		t.Errorf("p90 = %g, want 0.090", s.P90Sec)
	}
	if s.P99Sec != 0.099 {
		t.Errorf("p99 = %g, want 0.099", s.P99Sec)
	}
	if s.MeanSec < 0.0504 || s.MeanSec > 0.0506 {
		t.Errorf("mean = %g", s.MeanSec)
	}
	if s.QPS <= 0 {
		t.Errorf("qps = %g", s.QPS)
	}
	if got := summarizeLatencies(nil); got != (LatencySummary{}) {
		t.Errorf("empty input: %+v", got)
	}
}

func TestSummaryWriteJSON(t *testing.T) {
	s := &Summary{Scale: "small"}
	s.Add("table2", 1500*time.Millisecond, []Table2Row{{
		Benchmark:    "Mixed image",
		Objects:      10,
		AvgSegments:  9.5,
		AvgSearchSec: 0.004,
		Latency:      LatencySummary{Queries: 5, MeanSec: 0.004, P50Sec: 0.003, P90Sec: 0.006, P99Sec: 0.006, QPS: 250},
	}})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Scale   string `json:"scale"`
		Results []struct {
			Name       string  `json:"name"`
			ElapsedSec float64 `json:"elapsed_sec"`
			Rows       []struct {
				Benchmark string `json:"benchmark"`
				Latency   struct {
					P99Sec float64 `json:"p99_sec"`
					QPS    float64 `json:"qps"`
				} `json:"latency"`
			} `json:"rows"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Scale != "small" || len(decoded.Results) != 1 {
		t.Fatalf("decoded: %+v", decoded)
	}
	r := decoded.Results[0]
	if r.Name != "table2" || r.ElapsedSec != 1.5 {
		t.Fatalf("result: %+v", r)
	}
	if len(r.Rows) != 1 || r.Rows[0].Benchmark != "Mixed image" {
		t.Fatalf("rows: %+v", r.Rows)
	}
	if r.Rows[0].Latency.P99Sec != 0.006 || r.Rows[0].Latency.QPS != 250 {
		t.Fatalf("latency: %+v", r.Rows[0].Latency)
	}
}
