package experiments

import (
	"fmt"
	"io"

	"ferret/internal/core"
	"ferret/internal/synth"
)

// Fig7Series is one panel of Figure 7: average precision as a function of
// sketch size for one data type, with the original-feature-vector quality
// as the reference line.
type Fig7Series struct {
	Dataset           string
	Bits              []int
	AvgPrecision      []float64
	OriginalPrecision float64 // the solid line in the paper's plots
	FVBits            int
}

// Knees locates the low and high knee points of the series using the
// paper's informal definition: below the low knee quality degrades quickly;
// above the high knee it stops improving. The low knee is the smallest
// size within 85% of the original quality; the high knee the smallest size
// within 97%.
func (s Fig7Series) Knees() (low, high int) {
	for i, b := range s.Bits {
		if low == 0 && s.AvgPrecision[i] >= 0.85*s.OriginalPrecision {
			low = b
		}
		if high == 0 && s.AvgPrecision[i] >= 0.97*s.OriginalPrecision {
			high = b
			break
		}
	}
	return low, high
}

// Figure7 reproduces the sketch-size sweep: for each data type, the quality
// benchmark is evaluated with sketches of each size (filtering off, i.e.
// BruteForceSketch) and once with the original feature vectors
// (BruteForceOriginal — the solid line).
func Figure7(scale Scale) ([]Fig7Series, error) {
	type panel struct {
		dt    dataType
		bits  []int
		bench *synth.Benchmark
	}
	vary, err := synth.VARY(scale.VARY)
	if err != nil {
		return nil, err
	}
	timit, err := synth.TIMIT(scale.TIMIT)
	if err != nil {
		return nil, err
	}
	psb, err := synth.PSB(scale.PSB)
	if err != nil {
		return nil, err
	}
	panels := []panel{
		{imageType(), scale.ImageSketchBits, vary},
		{audioType(), scale.AudioSketchBits, timit},
		{shapeType(), scale.ShapeSketchBits, psb},
	}

	var out []Fig7Series
	for _, p := range panels {
		series := Fig7Series{Dataset: p.dt.name, FVBits: featureBits(p.dt.dim)}
		// Reference: original feature vectors.
		e, cleanup, err := buildEngine(p.dt, p.dt.sketchBits, p.bench.Objects, nil)
		if err != nil {
			return nil, err
		}
		rep, err := quality(e, p.bench.Sets, core.BruteForceOriginal)
		cleanup()
		if err != nil {
			return nil, err
		}
		series.OriginalPrecision = rep.AvgPrecision

		for _, bits := range p.bits {
			e, cleanup, err := buildEngine(p.dt, bits, p.bench.Objects, nil)
			if err != nil {
				return nil, err
			}
			rep, err := quality(e, p.bench.Sets, core.BruteForceSketch)
			cleanup()
			if err != nil {
				return nil, err
			}
			series.Bits = append(series.Bits, bits)
			series.AvgPrecision = append(series.AvgPrecision, rep.AvgPrecision)
		}
		out = append(out, series)
	}
	return out, nil
}

// FprintFigure7 renders the sweep as one block per panel.
func FprintFigure7(w io.Writer, series []Fig7Series) {
	for _, s := range series {
		fmt.Fprintf(w, "# %s (original feature vectors: avg precision %.3f at %d bits/vector)\n",
			s.Dataset, s.OriginalPrecision, s.FVBits)
		fmt.Fprintf(w, "%12s %12s %14s\n", "sketch(bits)", "avg_prec", "vs_original")
		for i := range s.Bits {
			rel := 0.0
			if s.OriginalPrecision > 0 {
				rel = s.AvgPrecision[i] / s.OriginalPrecision
			}
			fmt.Fprintf(w, "%12d %12.3f %13.1f%%\n", s.Bits[i], s.AvgPrecision[i], rel*100)
		}
		low, high := s.Knees()
		if low > 0 && high > 0 {
			fmt.Fprintf(w, "# knees: low=%d bits (ratio %.0f:1), high=%d bits (ratio %.0f:1)\n",
				low, float64(s.FVBits)/float64(low), high, float64(s.FVBits)/float64(high))
		}
		fmt.Fprintln(w)
	}
}

// Fig8Point is one measurement of Figure 8: query time at a dataset size
// under one search mode.
type Fig8Point struct {
	N       int
	Mode    core.Mode
	Seconds float64
}

// Fig8Panel is one panel of Figure 8 (one dataset, all modes and sizes).
type Fig8Panel struct {
	Dataset string
	Points  []Fig8Point
}

// Figure8 reproduces the query-performance comparison: average query time
// as a function of dataset size for BruteForceOriginal, BruteForceSketch
// and Filtering, on the three speed datasets. The engine is grown
// incrementally so each dataset is generated and sketched once.
func Figure8(scale Scale) ([]Fig8Panel, error) {
	modes := []core.Mode{core.BruteForceOriginal, core.BruteForceSketch, core.Filtering}
	var out []Fig8Panel
	for _, ds := range speedDatasets(scale) {
		objs := ds.gen(ds.n, 301)
		queries := ds.gen(scale.SpeedQueries, 909)
		e, cleanup, err := buildEngine(ds.dt, ds.dt.sketchBits, nil, nil)
		if err != nil {
			return nil, err
		}
		panel := Fig8Panel{Dataset: speedRowName(ds.dt)}
		ingested := 0
		for _, frac := range scale.SweepFractions {
			target := int(frac * float64(ds.n))
			for ; ingested < target && ingested < len(objs); ingested++ {
				if _, err := e.Ingest(objs[ingested], nil); err != nil {
					cleanup()
					return nil, err
				}
			}
			for _, mode := range modes {
				sec, err := avgQuerySeconds(e, queries, mode, 20)
				if err != nil {
					cleanup()
					return nil, err
				}
				panel.Points = append(panel.Points, Fig8Point{N: ingested, Mode: mode, Seconds: sec})
			}
		}
		cleanup()
		out = append(out, panel)
	}
	return out, nil
}

// FprintFigure8 renders each panel as size × mode columns.
func FprintFigure8(w io.Writer, panels []Fig8Panel) {
	for _, p := range panels {
		fmt.Fprintf(w, "# %s: avg query seconds by dataset size\n", p.Dataset)
		fmt.Fprintf(w, "%10s %22s %22s %22s\n", "objects", "BruteForceOriginal", "BruteForceSketch", "Filtering")
		// Group points by N preserving order.
		byN := map[int]map[core.Mode]float64{}
		var order []int
		for _, pt := range p.Points {
			if byN[pt.N] == nil {
				byN[pt.N] = map[core.Mode]float64{}
				order = append(order, pt.N)
			}
			byN[pt.N][pt.Mode] = pt.Seconds
		}
		for _, n := range order {
			m := byN[n]
			fmt.Fprintf(w, "%10d %22.5f %22.5f %22.5f\n",
				n, m[core.BruteForceOriginal], m[core.BruteForceSketch], m[core.Filtering])
		}
		fmt.Fprintln(w)
	}
}
