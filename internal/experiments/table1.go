package experiments

import (
	"fmt"
	"io"

	"ferret/internal/baseline"
	"ferret/internal/core"
	"ferret/internal/sketch"
	"ferret/internal/synth"
	"ferret/internal/vector"
)

// Table1Row is one row of the paper's Table 1: search quality and metadata
// sizes on the search-quality benchmark suite.
type Table1Row struct {
	Dataset      string
	Method       string
	AvgPrecision float64
	FirstTier    float64
	SecondTier   float64
	FVBits       int
	SketchBits   int // 0 for baselines without sketches
}

// Ratio returns the feature-vector to sketch size ratio ("n/a" handled by
// the printer).
func (r Table1Row) Ratio() float64 {
	if r.SketchBits == 0 {
		return 0
	}
	return float64(r.FVBits) / float64(r.SketchBits)
}

// Table1 reproduces the search-quality table: Ferret (sketch-based search
// at the paper's sketch sizes) on VARY, TIMIT and PSB, the SIMPLIcity-like
// global-feature baseline on VARY, and SHD (exact ℓ₂ on full descriptors)
// on PSB.
func Table1(scale Scale) ([]Table1Row, error) {
	var rows []Table1Row

	// --- VARY image benchmark: Ferret vs global-feature baseline. ---
	vary, err := synth.VARY(scale.VARY)
	if err != nil {
		return nil, err
	}
	dt := imageType()
	e, cleanup, err := buildEngine(dt, dt.sketchBits, vary.Objects, vary.Attrs)
	if err != nil {
		return nil, err
	}
	rep, err := quality(e, benchSets(vary), core.BruteForceSketch)
	cleanup()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Dataset: dt.name, Method: "Ferret",
		AvgPrecision: rep.AvgPrecision, FirstTier: rep.AvgFirstTier, SecondTier: rep.AvgSecondTier,
		FVBits: featureBits(dt.dim), SketchBits: dt.sketchBits,
	})

	if len(vary.Baseline) > 0 {
		rep, err := baselineQuality(vary)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Dataset: dt.name, Method: "SIMPLIcity-like",
			AvgPrecision: rep.AvgPrecision, FirstTier: rep.AvgFirstTier, SecondTier: rep.AvgSecondTier,
			FVBits: featureBits(baseline.GlobalFeatureDim),
		})
	}

	// --- TIMIT audio benchmark: Ferret only (as in the paper). ---
	timit, err := synth.TIMIT(scale.TIMIT)
	if err != nil {
		return nil, err
	}
	at := audioType()
	e, cleanup, err = buildEngine(at, at.sketchBits, timit.Objects, timit.Attrs)
	if err != nil {
		return nil, err
	}
	rep, err = quality(e, benchSets(timit), core.BruteForceSketch)
	cleanup()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Dataset: at.name, Method: "Ferret",
		AvgPrecision: rep.AvgPrecision, FirstTier: rep.AvgFirstTier, SecondTier: rep.AvgSecondTier,
		FVBits: featureBits(at.dim), SketchBits: at.sketchBits,
	})

	// --- PSB shape benchmark: Ferret vs SHD (exact ℓ₂). ---
	psb, err := synth.PSB(scale.PSB)
	if err != nil {
		return nil, err
	}
	st := shapeType()
	e, cleanup, err = buildEngine(st, st.sketchBits, psb.Objects, psb.Attrs)
	if err != nil {
		return nil, err
	}
	rep, err = quality(e, benchSets(psb), core.BruteForceSketch)
	if err != nil {
		cleanup()
		return nil, err
	}
	rows = append(rows, Table1Row{
		Dataset: st.name, Method: "Ferret",
		AvgPrecision: rep.AvgPrecision, FirstTier: rep.AvgFirstTier, SecondTier: rep.AvgSecondTier,
		FVBits: featureBits(st.dim), SketchBits: st.sketchBits,
	})
	// SHD baseline reuses the same engine's stored descriptors with an
	// exact ℓ₂ brute-force ranking.
	shdRep, err := shdQuality(psb)
	cleanup()
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Dataset: st.name, Method: "SHD",
		AvgPrecision: shdRep.AvgPrecision, FirstTier: shdRep.AvgFirstTier, SecondTier: shdRep.AvgSecondTier,
		FVBits: featureBits(st.dim),
	})
	return rows, nil
}

// baselineQuality evaluates the global-feature image baseline: a fresh
// engine over the baseline objects with the baseline's ℓ₁ object distance
// (EMD on single-segment objects reduces to the segment distance), queried
// brute-force on the original vectors.
func baselineQuality(vary *synth.Benchmark) (rep report, err error) {
	dim := baseline.GlobalFeatureDim
	min := make([]float32, dim)
	max := make([]float32, dim)
	for i := range max {
		max[i] = 1
	}
	cfg := core.Config{
		Sketch:          sketch.Params{N: 64, K: 1, Min: min, Max: max, Seed: 204},
		SegmentDistance: vector.L1,
	}
	e, cleanup, err := tempEngine(cfg)
	if err != nil {
		return rep, err
	}
	defer cleanup()
	for i := range vary.Baseline {
		if _, err := e.Ingest(vary.Baseline[i], nil); err != nil {
			return rep, err
		}
	}
	r, err := quality(e, vary.Sets, core.BruteForceOriginal)
	if err != nil {
		return rep, err
	}
	return report{r.AvgPrecision, r.AvgFirstTier, r.AvgSecondTier}, nil
}

// shdQuality evaluates the SHD baseline: exact ℓ₂ on the full descriptors.
func shdQuality(psb *synth.Benchmark) (rep report, err error) {
	st := shapeType()
	cfg := core.Config{
		Sketch:          st.sketchCfg(64),
		SegmentDistance: vector.L2,
	}
	e, cleanup, err := tempEngine(cfg)
	if err != nil {
		return rep, err
	}
	defer cleanup()
	for i := range psb.Objects {
		if _, err := e.Ingest(psb.Objects[i], nil); err != nil {
			return rep, err
		}
	}
	r, err := quality(e, psb.Sets, core.BruteForceOriginal)
	if err != nil {
		return rep, err
	}
	return report{r.AvgPrecision, r.AvgFirstTier, r.AvgSecondTier}, nil
}

// report is the quality triple used by the baseline helpers.
type report struct {
	AvgPrecision, AvgFirstTier, AvgSecondTier float64
}

// FprintTable1 renders rows in the paper's layout.
func FprintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-14s %-16s %9s %8s %8s %10s %11s %7s\n",
		"Dataset", "Method", "AvgPrec", "1stTier", "2ndTier", "FV(bits)", "Sketch(bits)", "Ratio")
	for _, r := range rows {
		sk, ratio := "n/a", "n/a"
		if r.SketchBits > 0 {
			sk = fmt.Sprintf("%d", r.SketchBits)
			ratio = fmt.Sprintf("%.1f:1", r.Ratio())
		}
		fmt.Fprintf(w, "%-14s %-16s %9.2f %8.2f %8.2f %10d %11s %7s\n",
			r.Dataset, r.Method, r.AvgPrecision, r.FirstTier, r.SecondTier, r.FVBits, sk, ratio)
	}
}
