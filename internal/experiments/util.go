package experiments

import (
	"fmt"
	"os"
	"time"

	"ferret/internal/attr"
	"ferret/internal/audiofeat"
	"ferret/internal/core"
	"ferret/internal/evaltool"
	"ferret/internal/imagefeat"
	"ferret/internal/kvstore"
	"ferret/internal/object"
	"ferret/internal/shape"
	"ferret/internal/sketch"
	"ferret/internal/synth"
)

// tempEngine opens an engine in a throwaway directory with relaxed
// durability (experiments rebuild their data; per-commit fsync would
// dominate ingest time).
func tempEngine(cfg core.Config) (*core.Engine, func(), error) {
	dir, err := os.MkdirTemp("", "ferret-exp-*")
	if err != nil {
		return nil, nil, err
	}
	cfg.Dir = dir
	cfg.Store = kvstore.Options{Sync: kvstore.SyncPeriodic, SyncInterval: time.Minute}
	e, err := core.Open(cfg)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	cleanup := func() {
		e.Close()
		os.RemoveAll(dir)
	}
	return e, cleanup, nil
}

// dataType bundles the per-data-type engine parameters used across the
// experiments.
type dataType struct {
	name       string
	dim        int
	sketchBits int
	sketchCfg  func(nBits int) sketch.Params
	rankThresh float64
}

func imageType() dataType {
	min, max := imagefeat.FeatureBounds()
	return dataType{
		name: "VARY Image", dim: imagefeat.FeatureDim, sketchBits: 96,
		sketchCfg: func(n int) sketch.Params {
			return sketch.Params{N: n, K: 1, Min: min, Max: max, Seed: 201}
		},
		rankThresh: 2.0,
	}
}

func audioType() dataType {
	min, max := audiofeat.DefaultFeatureBounds()
	return dataType{
		name: "TIMIT Audio", dim: audiofeat.FeatureDim, sketchBits: 600,
		sketchCfg: func(n int) sketch.Params {
			return sketch.Params{N: n, K: 1, Min: min, Max: max, Seed: 202}
		},
	}
}

// mixedAudioType matches the feature-level speed dataset's value range
// ([-4, 4] per dimension) rather than the real MFCC pipeline's.
func mixedAudioType() dataType {
	min := make([]float32, audiofeat.FeatureDim)
	max := make([]float32, audiofeat.FeatureDim)
	for i := range min {
		min[i], max[i] = -4, 4
	}
	return dataType{
		name: "TIMIT Audio", dim: audiofeat.FeatureDim, sketchBits: 600,
		sketchCfg: func(n int) sketch.Params {
			return sketch.Params{N: n, K: 1, Min: min, Max: max, Seed: 202}
		},
	}
}

func shapeType() dataType {
	min, max := shape.FeatureBounds()
	return dataType{
		name: "PSB 3D Shape", dim: shape.DescriptorDim, sketchBits: 800,
		sketchCfg: func(n int) sketch.Params {
			return sketch.Params{N: n, K: 1, Min: min, Max: max, Seed: 203}
		},
	}
}

// mixedShapeType matches the feature-level speed dataset's [0, 2] range.
func mixedShapeType() dataType {
	min := make([]float32, shape.DescriptorDim)
	max := make([]float32, shape.DescriptorDim)
	for i := range max {
		max[i] = 2
	}
	return dataType{
		name: "Mixed 3D shape", dim: shape.DescriptorDim, sketchBits: 800,
		sketchCfg: func(n int) sketch.Params {
			return sketch.Params{N: n, K: 1, Min: min, Max: max, Seed: 203}
		},
	}
}

// buildEngine opens a temp engine for a data type with the given sketch
// size and ingests the objects.
func buildEngine(dt dataType, nBits int, objs []object.Object, attrs []attr.Attrs) (*core.Engine, func(), error) {
	cfg := core.Config{Sketch: dt.sketchCfg(nBits), RankThreshold: dt.rankThresh}
	e, cleanup, err := tempEngine(cfg)
	if err != nil {
		return nil, nil, err
	}
	for i := range objs {
		var a attr.Attrs
		if attrs != nil {
			a = attrs[i]
		}
		if _, err := e.Ingest(objs[i], a); err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("experiments: ingest %s: %w", objs[i].Key, err)
		}
	}
	return e, cleanup, nil
}

// quality runs the evaluation tool in the given mode and returns the
// report.
func quality(e *core.Engine, sets [][]string, mode core.Mode) (evaltool.Report, error) {
	r := &evaltool.Runner{Engine: e, Options: core.QueryOptions{Mode: mode}}
	return r.Run(sets)
}

// speedFilter pins the filtering parameters for the speed experiments to
// the paper's regime: a bounded candidate set per query segment,
// independent of dataset size (the tunable "number of filtered candidates
// to get for each query segment", §5).
var speedFilter = core.FilterParams{QuerySegments: 3, NearestPerSegment: 50}

// avgQuerySeconds measures the mean wall-clock time of running the query
// objects against the engine in the given mode.
func avgQuerySeconds(e *core.Engine, queries []object.Object, mode core.Mode, k int) (float64, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("experiments: no query objects")
	}
	sum, err := measureQueries(e, queries, mode, k)
	if err != nil {
		return 0, err
	}
	return sum.MeanSec, nil
}

// featureBits is the per-feature-vector metadata size in bits (32-bit
// floats, as in the paper's Table 1).
func featureBits(dim int) int { return dim * 32 }

// benchSets converts a synth benchmark's similarity sets for the
// evaluation tool (identity — kept for clarity at call sites).
func benchSets(b *synth.Benchmark) [][]string { return b.Sets }
