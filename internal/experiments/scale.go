// Package experiments reproduces every table and figure of the paper's
// evaluation (§6) against the synthetic stand-in datasets:
//
//   - Table 1  — search quality + metadata sizes (VARY / TIMIT / PSB, with
//     the SIMPLIcity-like and SHD baselines)
//   - Table 2  — search speed with sketching and filtering on
//   - Figure 7 — average precision vs sketch size, per data type
//   - Figure 8 — query time vs dataset size for the three search modes
//
// The same code drives the root benchmark harness (bench_test.go) and the
// ferret-bench command. Scales control dataset sizes: the paper's absolute
// numbers came from its authors' testbed and datasets, so the reproduction
// targets the paper's *shape* — who wins, by what rough factor, and where
// the curves bend.
package experiments

import "ferret/internal/synth"

// Scale sizes every experiment.
type Scale struct {
	Name string

	// Quality benchmarks (Table 1, Figure 7).
	VARY  synth.VARYOptions
	TIMIT synth.TIMITOptions
	PSB   synth.PSBOptions

	// Speed datasets (Table 2, Figure 8): object counts.
	MixedImageN int
	AudioN      int
	MixedShapeN int

	// SpeedQueries per measurement point.
	SpeedQueries int

	// Figure 8 sweep: dataset sizes as fractions of the Ns above.
	SweepFractions []float64

	// Figure 7 sketch-size sweeps (bits) per data type.
	ImageSketchBits []int
	AudioSketchBits []int
	ShapeSketchBits []int
}

// Small is the test/bench scale: runs in seconds.
func Small() Scale {
	return Scale{
		Name:            "small",
		VARY:            synth.VARYOptions{Sets: 8, SetSize: 4, Distractors: 60, Seed: 101, WithBaseline: true},
		TIMIT:           synth.TIMITOptions{Sets: 6, Speakers: 4, Distractors: 20, Seed: 102},
		PSB:             synth.PSBOptions{Classes: 5, PerClass: 4, Seed: 103},
		MixedImageN:     2000,
		AudioN:          1500,
		MixedShapeN:     4000,
		SpeedQueries:    5,
		SweepFractions:  []float64{0.25, 0.5, 0.75, 1.0},
		ImageSketchBits: []int{32, 64, 96, 128, 256},
		AudioSketchBits: []int{64, 128, 250, 600, 1024},
		ShapeSketchBits: []int{64, 200, 400, 800, 1600},
	}
}

// Medium is the ferret-bench default: minutes.
func Medium() Scale {
	return Scale{
		Name:            "medium",
		VARY:            synth.VARYOptions{Sets: 32, SetSize: 5, Distractors: 500, ConfusersPerSet: 15, Seed: 101, WithBaseline: true},
		TIMIT:           synth.TIMITOptions{Sets: 25, Speakers: 7, Distractors: 120, Seed: 102},
		PSB:             synth.PSBOptions{Classes: 15, PerClass: 6, Seed: 103},
		MixedImageN:     20000,
		AudioN:          6300,
		MixedShapeN:     40000,
		SpeedQueries:    10,
		SweepFractions:  []float64{0.125, 0.25, 0.5, 0.75, 1.0},
		ImageSketchBits: []int{16, 32, 48, 64, 80, 96, 128, 192, 256, 448},
		AudioSketchBits: []int{32, 64, 125, 250, 400, 600, 1024, 2048},
		ShapeSketchBits: []int{32, 64, 128, 200, 400, 600, 800, 1600, 3200},
	}
}

// Paper approaches the paper's dataset sizes (slow: tens of minutes to
// hours depending on hardware).
func Paper() Scale {
	s := Medium()
	s.Name = "paper"
	s.VARY = synth.VARYOptions{Sets: 32, SetSize: 5, Distractors: 9840, ConfusersPerSet: 15, Seed: 101, WithBaseline: true}
	s.TIMIT = synth.TIMITOptions{Sets: 150, Speakers: 7, Distractors: 500, Seed: 102}
	s.PSB = synth.PSBOptions{Classes: 92, PerClass: 10, Seed: 103}
	s.MixedImageN = 660000
	s.AudioN = 6300
	s.MixedShapeN = 40000
	s.SpeedQueries = 10
	return s
}

// ByName resolves a scale name.
func ByName(name string) (Scale, bool) {
	switch name {
	case "", "small":
		return Small(), true
	case "medium":
		return Medium(), true
	case "paper", "full":
		return Paper(), true
	default:
		return Scale{}, false
	}
}
