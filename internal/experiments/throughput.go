package experiments

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"ferret/internal/core"
	"ferret/internal/kvstore"
	"ferret/internal/object"
	"ferret/internal/synth"
)

// ThroughputRow is one arm of the closed-loop serving benchmark: a fixed
// number of clients, each issuing its next query the moment the previous
// answer returns, against an engine with the shared-scan scheduler either
// disabled (one-query-at-a-time, the pre-scheduler serving model) or
// enabled. QPS is wall-clock throughput over the whole run; the latency
// percentiles are per-query as a client sees them (including any time spent
// queued in the coalescing window).
type ThroughputRow struct {
	Concurrency     int            `json:"concurrency"`
	Batched         bool           `json:"batched"`
	Queries         int            `json:"queries"`
	WallSec         float64        `json:"wall_sec"`
	QPS             float64        `json:"qps"`
	Latency         LatencySummary `json:"latency"`
	Batches         int64          `json:"batches"`
	Coalesced       int64          `json:"coalesced"`
	MeanBatchSize   float64        `json:"mean_batch_size,omitempty"`
	SpeedupVsSerial float64        `json:"speedup_vs_serial,omitempty"`
}

// ThroughputOptions narrows the sweep from ferret-bench's -concurrency and
// -batch flags; the zero value runs the full grid (both arms, clients
// doubling 1..8).
type ThroughputOptions struct {
	Concurrencies []int // nil = {1, 2, 4, 8}
	BatchedOnly   bool  // skip the unbatched baseline arm
}

// Scheduler shape for the batched arm: a short coalescing window and a
// batch cap equal to the largest client count in the sweep, so a full
// 8-client burst dispatches the moment the last straggler arrives instead
// of waiting out the window (a lone client still pays the full window —
// visible in the concurrency-1 row).
var throughputSched = core.SchedulerParams{Window: 200 * time.Microsecond, MaxBatch: 8}

// Throughput measures serving throughput on the mixed-shape speed corpus
// (the heaviest speed dataset: 800-bit sketches). The corpus is ingested
// once; the batched arm reopens the same store with the scheduler enabled,
// so both arms search identical data.
func Throughput(scale Scale, opts ThroughputOptions) ([]ThroughputRow, error) {
	dt := mixedShapeType()
	objs := synth.MixedShapeObjects(scale.MixedShapeN, 301)
	queries := synth.MixedShapeObjects(64, 909)
	perClient := 20 * scale.SpeedQueries

	dir, err := os.MkdirTemp("", "ferret-exp-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	open := func(sched core.SchedulerParams) (*core.Engine, error) {
		return core.Open(core.Config{
			Dir:           dir,
			Sketch:        dt.sketchCfg(dt.sketchBits),
			RankThreshold: dt.rankThresh,
			Scheduler:     sched,
			Store:         kvstore.Options{Sync: kvstore.SyncPeriodic, SyncInterval: time.Minute},
		})
	}

	concs := opts.Concurrencies
	if len(concs) == 0 {
		concs = []int{1, 2, 4, 8}
	}
	arms := []bool{false, true}
	if opts.BatchedOnly {
		arms = []bool{true}
	}

	var rows []ThroughputRow
	ingested := false
	for _, batched := range arms {
		sched := core.SchedulerParams{}
		if batched {
			sched = throughputSched
		}
		e, err := open(sched)
		if err != nil {
			return nil, err
		}
		if !ingested {
			for i := range objs {
				if _, err := e.Ingest(objs[i], nil); err != nil {
					e.Close()
					return nil, fmt.Errorf("experiments: ingest %s: %w", objs[i].Key, err)
				}
			}
			ingested = true
		}
		for _, c := range concs {
			row, err := measureClosedLoop(e, queries, c, perClient, 20, batched)
			if err != nil {
				e.Close()
				return nil, err
			}
			rows = append(rows, row)
		}
		if err := e.Close(); err != nil {
			return nil, err
		}
	}

	// Speedup relative to the serial baseline: the unbatched single-client
	// arm (with -batch there is no baseline and the column stays zero).
	for _, r := range rows {
		if !r.Batched && r.Concurrency == 1 && r.QPS > 0 {
			for i := range rows {
				rows[i].SpeedupVsSerial = rows[i].QPS / r.QPS
			}
			break
		}
	}
	return rows, nil
}

// measureClosedLoop runs `clients` goroutines, each issuing `perClient`
// Filtering-mode queries back to back, and condenses the run into one row.
func measureClosedLoop(e *core.Engine, queries []object.Object, clients, perClient, k int, batched bool) (ThroughputRow, error) {
	reg := e.Telemetry()
	batches0 := reg.Value("ferret_batches_total")
	coalesced0 := reg.Value("ferret_queries_coalesced_total")

	lats := make([][]float64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			secs := make([]float64, 0, perClient)
			opt := core.QueryOptions{Mode: core.Filtering, K: k, Filter: speedFilter}
			for i := 0; i < perClient; i++ {
				q := queries[(c*perClient+i)%len(queries)]
				t0 := time.Now()
				if _, err := e.Query(q, opt); err != nil {
					errs[c] = err
					return
				}
				secs = append(secs, time.Since(t0).Seconds())
			}
			lats[c] = secs
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return ThroughputRow{}, err
		}
	}
	var all []float64
	for _, s := range lats {
		all = append(all, s...)
	}
	row := ThroughputRow{
		Concurrency: clients,
		Batched:     batched,
		Queries:     len(all),
		WallSec:     wall,
		Latency:     summarizeLatencies(all),
		Batches:     int64(reg.Value("ferret_batches_total") - batches0),
		Coalesced:   int64(reg.Value("ferret_queries_coalesced_total") - coalesced0),
	}
	if wall > 0 {
		row.QPS = float64(len(all)) / wall
	}
	// The summary's QPS field is the serial sum-of-latency rate, which
	// double-counts overlapped time under concurrency; the closed-loop
	// wall-clock rate is the one that means "served queries per second".
	row.Latency.QPS = row.QPS
	if row.Batches > 0 {
		row.MeanBatchSize = float64(row.Queries) / float64(row.Batches)
	}
	return row, nil
}

// FprintThroughput renders the sweep as a table.
func FprintThroughput(w io.Writer, rows []ThroughputRow) {
	fmt.Fprintf(w, "%8s %8s %8s %10s %10s %10s %10s %9s %9s\n",
		"Clients", "Batched", "Queries", "QPS", "p50(ms)", "p90(ms)", "p99(ms)", "AvgBatch", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %8v %8d %10.1f %10.2f %10.2f %10.2f %9.2f %8.2fx\n",
			r.Concurrency, r.Batched, r.Queries, r.QPS,
			r.Latency.P50Sec*1e3, r.Latency.P90Sec*1e3, r.Latency.P99Sec*1e3,
			r.MeanBatchSize, r.SpeedupVsSerial)
	}
}
