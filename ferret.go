// Package ferret is a toolkit for building content-based similarity search
// systems for feature-rich data — a from-scratch Go implementation of
// "Ferret: A Toolkit for Content-Based Similarity Search of Feature-Rich
// Data" (Lv, Josephson, Wang, Charikar, Li — EuroSys 2006).
//
// A search system is built by combining the toolkit's core components with
// data-type specific plug-ins:
//
//   - an Extractor (segmentation + feature extraction) turning raw data
//     into weighted sets of feature vectors,
//   - a segment distance function (default ℓ₁) and an object distance
//     function (default Earth Mover's Distance), and
//   - sketching/filtering/ranking parameters.
//
// The toolkit supplies the core similarity search engine (sketch
// construction, filtering, ranking), attribute-based search, transactional
// metadata storage with crash recovery, a command-line query protocol with
// TCP server and client, data acquisition, a web interface and a
// performance evaluation tool. Ready-made configurations for the paper's
// four data types (images, audio, 3D shapes, genomic microarrays) live in
// datatypes.go.
//
// Basic use:
//
//	sys, err := ferret.Open(ferret.Config{
//	    Dir:    "/var/lib/myferret",
//	    Sketch: ferret.SketchParams{N: 96, Min: mins, Max: maxs},
//	}, nil)
//	id, err := sys.Ingest(obj, ferret.Attrs{"note": "a dog"})
//	results, err := sys.Query(queryObj, ferret.QueryOptions{K: 10})
package ferret

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"ferret/internal/acquire"
	"ferret/internal/attr"
	"ferret/internal/core"
	"ferret/internal/evaltool"
	"ferret/internal/object"
	"ferret/internal/protocol"
	"ferret/internal/server"
	"ferret/internal/sketch"
	"ferret/internal/telemetry"
	"ferret/internal/telemetry/trace"
	"ferret/internal/vector"
	"ferret/internal/webui"
)

// Core data model (paper §2).
type (
	// Object is the generic multi-feature data object: a set of weighted
	// feature vectors.
	Object = object.Object
	// Segment is one weighted feature vector of an object.
	Segment = object.Segment
	// ID identifies an ingested object.
	ID = object.ID
	// Attrs are the keyword attributes / annotations of an object.
	Attrs = attr.Attrs
	// AttrQuery is an attribute-based search request.
	AttrQuery = attr.Query
)

// Engine configuration and query types (paper §3–§4).
type (
	// Config parameterizes a search system; see core.Config.
	Config = core.Config
	// SketchParams configures sketch construction (paper Algorithms 1–2).
	SketchParams = sketch.Params
	// FilterParams tunes the filtering unit.
	FilterParams = core.FilterParams
	// SchedulerParams configures the shared-scan query scheduler that
	// coalesces concurrent searches into batched arena passes.
	SchedulerParams = core.SchedulerParams
	// HIndexParams configures the multi-table Hamming index over the
	// sketch arena (sub-linear filtering); the Config.HIndex field.
	HIndexParams = core.HIndexParams
	// SegmentParams configures the segmented ingest pipeline (sealed
	// immutable segments + background compaction); the Config.Segments
	// field. The zero value keeps the engine in single-arena mode.
	SegmentParams = core.SegmentParams
	// IngestParams configures the bounded ingest queue (backpressure or
	// shed between producers and the engine's serialized write path); the
	// Config.Ingest field.
	IngestParams = core.IngestParams
	// TraceParams configures the query tracer (sampling retention and the
	// slow-query log); the Config.Trace field. The zero value enables
	// tracing with defaults.
	TraceParams = trace.Params
	// ResultCacheParams configures the engine's hot-query result cache
	// (epoch-invalidated, LRU + single-flight); the Config.ResultCache
	// field. The zero value disables the cache.
	ResultCacheParams = core.ResultCacheParams
	// QueryOptions controls one similarity query.
	QueryOptions = core.QueryOptions
	// Result is one ranked answer.
	Result = core.Result
	// Answer is one query's outcome: ranked results plus the degradation
	// flag set when a time budget expired mid-rank.
	Answer = core.Answer
	// Mode selects the search approach.
	Mode = core.Mode
	// SegmentDistance is the plug-in segment distance function type.
	SegmentDistance = vector.Func
	// Report aggregates an evaluation run.
	Report = evaltool.Report
)

// Search modes (paper §6.3.3).
const (
	Filtering          = core.Filtering
	BruteForceOriginal = core.BruteForceOriginal
	BruteForceSketch   = core.BruteForceSketch
)

// ParseMode resolves a mode name ("filtering", "bruteforce", "sketch").
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// NewObject builds a multi-segment object from parallel weights/vectors.
func NewObject(key string, weights []float32, vecs [][]float32) (Object, error) {
	return object.New(key, weights, vecs)
}

// SingleVector builds a one-segment object (3D shapes, genes).
func SingleVector(key string, vec []float32) Object { return object.Single(key, vec) }

// Extractor is the plug-in segmentation and feature extraction interface
// (the paper's seg_extract_func): it converts a data file into an Object.
type Extractor interface {
	Extract(path string) (Object, error)
}

// ExtractorFunc adapts a function to the Extractor interface.
type ExtractorFunc func(path string) (Object, error)

// Extract calls f.
func (f ExtractorFunc) Extract(path string) (Object, error) { return f(path) }

// ServerConfig tunes the protocol server's resilience policy (see
// server.Server).
type ServerConfig struct {
	// QueryBudget is the per-query time budget; expired queries answer
	// degraded instead of running on (0 = unbounded).
	QueryBudget time.Duration
	// MaxConns caps concurrent client connections; excess connections get
	// one BUSY error and are closed (0 = unlimited).
	MaxConns int
	// ReadTimeout bounds the wait for each request line (0 = none).
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write (0 = none).
	WriteTimeout time.Duration
	// Proto selects the wire-protocol policy: "" or "v2" accepts the
	// binary protocol v2 upgrade (HELLO proto=v2), "text" refuses it and
	// keeps every connection on the line protocol.
	Proto string
}

// System is a running similarity search system: the core engine plus the
// plug-in extractor, with constructors for the surrounding infrastructure
// (server, web UI, acquisition, evaluation).
type System struct {
	engine    *core.Engine
	extractor Extractor
	logger    *telemetry.Logger

	srvCfg  ServerConfig
	srvOnce sync.Once
	srv     *server.Server
}

// Open opens or creates a search system. extractor may be nil for systems
// fed programmatically (Ingest) rather than from files.
func Open(cfg Config, extractor Extractor) (*System, error) {
	engine, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &System{engine: engine, extractor: extractor}, nil
}

// Close releases the system and its metadata store.
func (s *System) Close() error { return s.engine.Close() }

// Engine exposes the core similarity search engine.
func (s *System) Engine() *core.Engine { return s.engine }

// Count returns the number of ingested objects.
func (s *System) Count() int { return s.engine.Count() }

// Ingest adds one extracted object with attributes.
func (s *System) Ingest(o Object, a Attrs) (ID, error) { return s.engine.Ingest(o, a) }

// IngestQueued adds one object through the bounded ingest queue when one is
// configured (Config.Ingest): under backpressure the call blocks until the
// queue drains (ctx cancels the wait); under the shed policy a full queue
// rejects with core.ErrOverloaded. Without a queue it is exactly Ingest.
func (s *System) IngestQueued(ctx context.Context, o Object, a Attrs) (ID, error) {
	return s.engine.IngestQueued(ctx, o, a)
}

// IngestQueueDepth reports the bounded ingest queue's current backlog (0
// when no queue is configured) — the ingest daemon's overload signal.
func (s *System) IngestQueueDepth() int { return s.engine.IngestQueueDepth() }

// IngestFile extracts and ingests a data file through the plug-in.
func (s *System) IngestFile(path string, a Attrs) (ID, error) {
	if s.extractor == nil {
		return 0, fmt.Errorf("ferret: no extractor plugged in")
	}
	o, err := s.extractor.Extract(path)
	if err != nil {
		return 0, err
	}
	if o.Key == "" {
		o.Key = path
	}
	return s.engine.Ingest(o, a)
}

// Query runs a similarity search with an extracted query object.
func (s *System) Query(q Object, opt QueryOptions) ([]Result, error) {
	return s.engine.Query(q, opt)
}

// Search is Query with cancellation and graceful degradation: ctx aborts
// the search, and opt.Budget (when positive) bounds its execution time —
// an expired budget returns the best results so far with Answer.Degraded
// set rather than an error.
func (s *System) Search(ctx context.Context, q Object, opt QueryOptions) (Answer, error) {
	return s.engine.Search(ctx, q, opt)
}

// SearchBatch runs several queries as one batched unit sharing arena scans
// (see core.Engine.SearchBatch); the returned slices are parallel to
// queries.
func (s *System) SearchBatch(ctx context.Context, queries []Object, opt QueryOptions) ([]Answer, []error) {
	return s.engine.SearchBatch(ctx, queries, opt)
}

// QueryFile extracts a file and uses it as the query object.
func (s *System) QueryFile(path string, opt QueryOptions) ([]Result, error) {
	if s.extractor == nil {
		return nil, fmt.Errorf("ferret: no extractor plugged in")
	}
	o, err := s.extractor.Extract(path)
	if err != nil {
		return nil, err
	}
	return s.engine.Query(o, opt)
}

// QueryByKey uses an already-ingested object as the query.
func (s *System) QueryByKey(key string, opt QueryOptions) ([]Result, error) {
	id, ok := s.engine.Meta().LookupKey(key)
	if !ok {
		return nil, fmt.Errorf("ferret: unknown object key %q", key)
	}
	return s.engine.QueryByID(id, opt)
}

// KeyOf resolves an ID to its external key.
func (s *System) KeyOf(id ID) string { return s.engine.Meta().Key(id) }

// LookupKey resolves an external key to its ID.
func (s *System) LookupKey(key string) (ID, bool) { return s.engine.Meta().LookupKey(key) }

// SearchAttrs runs an attribute-based search (bootstrap or refinement,
// paper §4.1.2).
func (s *System) SearchAttrs(q AttrQuery) []ID { return s.engine.Attrs().Search(q) }

// AttrsOf returns the stored attributes of an object.
func (s *System) AttrsOf(id ID) (Attrs, bool) { return s.engine.Attrs().Get(id) }

// Checkpoint forces a durable metadata snapshot.
func (s *System) Checkpoint() error { return s.engine.Meta().Checkpoint() }

// Telemetry returns the system's metric registry (per-stage query latency
// histograms, pipeline counters, serving-layer metrics).
func (s *System) Telemetry() *telemetry.Registry { return s.engine.Telemetry() }

// SetLogger attaches a structured logger; the protocol server logs
// connection lifecycle events through it. A nil logger (the default)
// discards them.
func (s *System) SetLogger(l *telemetry.Logger) { s.logger = l }

// DebugHandler returns the observability HTTP handler for this system:
// Prometheus text at /metrics, expvar JSON at /debug/vars, runtime profiles
// at /debug/pprof/ and retained query traces (recent ring + slow-query log)
// as JSON at /debug/traces. Mount it on a private listener.
func (s *System) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", telemetry.DebugHandler(s.engine.Telemetry()))
	mux.Handle("/debug/traces", trace.Handler(s.engine.Tracer()))
	return mux
}

// SetServerConfig installs the protocol server's resilience policy. It
// must be called before the first Serve/ServeContext.
func (s *System) SetServerConfig(cfg ServerConfig) { s.srvCfg = cfg }

// Serve runs the command-line query protocol server on l until closed.
func (s *System) Serve(l net.Listener) error {
	return s.ServeContext(context.Background(), l)
}

// ServeContext runs the protocol server on l until ctx is cancelled or
// Shutdown is called. A cancelled ctx stops accepting; in-flight queries
// are only aborted by Shutdown's grace expiry.
func (s *System) ServeContext(ctx context.Context, l net.Listener) error {
	return s.server().Serve(ctx, l)
}

// Shutdown drains the protocol server: idle connections close immediately,
// in-flight requests get until ctx expires, and the rest are aborted. It
// reports how many busy connections drained versus were aborted.
func (s *System) Shutdown(ctx context.Context) (drained, aborted int, err error) {
	return s.server().Shutdown(ctx)
}

// ListenAndServe runs the protocol server on a TCP address.
func (s *System) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// server memoizes the protocol server so Serve and Shutdown act on the
// same instance.
func (s *System) server() *server.Server {
	s.srvOnce.Do(func() {
		srv := &server.Server{
			Engine:       s.engine,
			DefaultK:     10,
			QueryBudget:  s.srvCfg.QueryBudget,
			MaxConns:     s.srvCfg.MaxConns,
			ReadTimeout:  s.srvCfg.ReadTimeout,
			WriteTimeout: s.srvCfg.WriteTimeout,
			Proto:        s.srvCfg.Proto,
			Logger:       s.logger.With("server"),
		}
		if s.extractor != nil {
			srv.Extract = s.extractor.Extract
		}
		s.srv = srv
	})
	return s.srv
}

// WebHandler returns the customizable web interface (paper §4.3) bound
// directly to this system (no TCP hop). present customizes per-result
// presentation and may be nil.
func (s *System) WebHandler(title string, present webui.Presenter) http.Handler {
	return webui.Handler(&localBackend{s}, title, present)
}

// NewScanner builds a data acquisition scanner over dir wired to this
// system (paper §4.3). exts filters extensions (ex. ".png"); empty accepts
// all files.
func (s *System) NewScanner(dir string, exts []string) *acquire.Scanner {
	return &acquire.Scanner{
		Dir:        dir,
		Extensions: exts,
		Extract: func(path string) (Object, error) {
			if s.extractor == nil {
				return Object{}, fmt.Errorf("ferret: no extractor plugged in")
			}
			return s.extractor.Extract(path)
		},
		Exists: func(key string) bool {
			_, ok := s.engine.Meta().LookupKey(key)
			return ok
		},
		Ingest: func(o Object, a Attrs) error {
			// Through the bounded ingest queue when one is configured, so a
			// fast scan slows to the engine's commit rate instead of piling
			// goroutines onto the write path.
			_, err := s.engine.IngestQueued(context.Background(), o, a)
			return err
		},
	}
}

// Evaluate drives the performance evaluation tool over ground-truth
// similarity sets (lists of object keys) and reports quality and latency.
func (s *System) Evaluate(sets [][]string, opt QueryOptions) (Report, error) {
	r := &evaltool.Runner{Engine: s.engine, Options: opt}
	return r.Run(sets)
}

// localBackend adapts the engine to the web UI's Backend without a TCP
// connection (useful for single-process deployments and tests; remote
// deployments use protocol.Dial instead).
type localBackend struct{ s *System }

func (b *localBackend) Count() (int, error) { return b.s.Count(), nil }

func (b *localBackend) Query(key string, p protocol.QueryParams) ([]protocol.Result, error) {
	mode, err := core.ParseMode(p.Mode)
	if err != nil {
		return nil, err
	}
	opt := QueryOptions{K: p.K, Mode: mode}
	if len(p.Keywords) > 0 || len(p.Attrs) > 0 {
		opt.Restrict = map[ID]bool{}
		for _, id := range b.s.SearchAttrs(AttrQuery{Keywords: p.Keywords, Equal: p.Attrs}) {
			opt.Restrict[id] = true
		}
	}
	results, err := b.s.QueryByKey(key, opt)
	if err != nil {
		return nil, err
	}
	out := make([]protocol.Result, len(results))
	for i, r := range results {
		out[i] = protocol.Result{Key: r.Key, Distance: r.Distance}
	}
	return out, nil
}

func (b *localBackend) Search(keywords []string, attrs map[string]string) ([]protocol.Result, error) {
	ids := b.s.SearchAttrs(AttrQuery{Keywords: keywords, Equal: attrs})
	out := make([]protocol.Result, len(ids))
	for i, id := range ids {
		out[i] = protocol.Result{Key: b.s.KeyOf(id)}
	}
	return out, nil
}

func (b *localBackend) Info(key string) (map[string]string, error) {
	id, ok := b.s.LookupKey(key)
	if !ok {
		return nil, fmt.Errorf("ferret: unknown object key %q", key)
	}
	pairs := map[string]string{"key": key}
	if a, ok := b.s.AttrsOf(id); ok {
		for k, v := range a {
			pairs["attr:"+k] = v
		}
	}
	return pairs, nil
}
