GO ?= go

.PHONY: all build test race vet check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages (telemetry hot paths, parallel
# query scans, the TCP server and the transactional store).
race:
	$(GO) test -race ./internal/telemetry ./internal/core ./internal/server ./internal/kvstore

vet:
	$(GO) vet ./...

check: build vet test race

bench:
	$(GO) test -bench . -benchtime 1x

clean:
	rm -rf bin
	$(GO) clean ./...
