GO ?= go

.PHONY: all build test race race-fast torture vet lint lint-fast lint-test check ci bench bench-json check-bench clean

# Benchmark artifact plumbing. bench-json measures the filter/kernel/pipeline
# microbenchmarks plus a medium-scale ferret-bench run (Table 2, the
# closed-loop serving-throughput sweep, the Hamming-index scaling sweep, the
# mixed-ingest run and the wire-level serving sweep with the result cache
# off/on) and merges them into $(BENCH_OUT); check-bench re-measures the
# microbenchmarks and fails if a gated benchmark (filter scan, multi-query
# Hamming kernel, index probe, concurrent query pipeline with and without
# trace recording) regressed >20% ns/op vs the committed artifact, or if the
# committed scaling sweep shows the indexed filter losing to the scan, or if
# the committed serving sweep's hot-cached arm falls under 2x the uncached
# throughput.
# Micro benches run -count=$(BENCH_COUNT) and benchcmp keeps the per-metric
# minimum, so a transient load spike cannot fail (or hide) a regression.
BENCH_OUT  ?= BENCH_10.json
BENCH_TMP  ?= /tmp/ferret-bench
BENCH_PKGS  = ./internal/core ./internal/sketch ./internal/vector
BENCH_RE    = FilterScan|Hamming|QueryPipeline|L1
BENCH_COUNT = 3

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick race pass over just the concurrency-heavy packages (telemetry hot
# paths, parallel query scans, the TCP server and the transactional store)
# for tight edit-compile loops; `make race` covers the whole tree.
race-fast:
	$(GO) test -race ./internal/telemetry ./internal/core ./internal/server ./internal/kvstore

# The crash-torture suites under the race detector: every write/sync
# boundary of a seeded workload is failed in every fault mode and recovery
# must land on exactly a committed prefix. The kvstore suite tortures the
# transactional store; the core suite drives the same fault matrix through
# the whole segmented ingest pipeline (tail seal, background merge,
# merge-time checkpoint) and additionally requires the recovered engine to
# pass the segment invariants and serve queries. A failure prints the seed
# (rerun with FERRET_TORTURE_SEED=<seed> to reproduce a single scenario).
torture:
	$(GO) test -race -run 'TestCrashTorture|TestFsyncPoisoning|TestFreshWALSurvivesImmediatePowerCut' -v ./internal/kvstore ./internal/core

vet:
	$(GO) vet ./...

# Project-specific static analysis: layering, atomicfield, poolescape,
# floatcmp, errclose, ctxfirst plus the interprocedural lockorder, lockpath
# and noalloc checks (see internal/lint and DESIGN.md §13). Zero diagnostics
# is the bar.
lint:
	$(GO) run ./cmd/ferret-lint ./...

# Edit-loop accelerator: only the analyzers whose trigger constructs appear
# in the working diff (vs $LINT_FAST_BASE, default HEAD), timed. Full `make
# lint` remains the merge gate.
lint-fast:
	./scripts/lint-fast.sh

# The analyzer suite's own tests under the race detector: the module-wide
# analyzers memoize per-function summaries on shared Program state, so their
# tests run with -race explicitly in CI ahead of the whole-tree race pass.
lint-test:
	$(GO) test -race ./internal/lint

check: build vet lint test race

# The full pre-merge gate: everything in check plus the analyzer suite's
# race-mode tests, the timed changed-package lint pass, the crash-torture
# suite and the benchmark regression guard against the committed artifact.
ci: check lint-test lint-fast torture check-bench

bench:
	$(GO) test -bench . -benchtime 1x

bench-json:
	mkdir -p $(BENCH_TMP)
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench '$(BENCH_RE)' -count=$(BENCH_COUNT) -benchmem | tee $(BENCH_TMP)/micro.txt
	$(GO) run ./cmd/ferret-bench -exp table2,throughput,scaling,ingest,serving -scale medium -json $(BENCH_TMP)/pipeline.json
	$(GO) run ./cmd/ferret-benchcmp -merge -micro $(BENCH_TMP)/micro.txt \
		-pipeline $(BENCH_TMP)/pipeline.json -out $(BENCH_OUT)

check-bench:
	mkdir -p $(BENCH_TMP)
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench '$(BENCH_RE)' -count=$(BENCH_COUNT) -benchmem > $(BENCH_TMP)/micro.txt
	$(GO) run ./cmd/ferret-benchcmp -merge -micro $(BENCH_TMP)/micro.txt -out $(BENCH_TMP)/new.json
	$(GO) run ./cmd/ferret-benchcmp -baseline $(BENCH_OUT) -new $(BENCH_TMP)/new.json

clean:
	rm -rf bin
	$(GO) clean ./...
