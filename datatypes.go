package ferret

import (
	"fmt"
	"os"

	"ferret/internal/audiofeat"
	"ferret/internal/genomic"
	"ferret/internal/imagefeat"
	"ferret/internal/kvstore"
	"ferret/internal/sensorfeat"
	"ferret/internal/shape"
	"ferret/internal/sketch"
	"ferret/internal/videofeat"
)

// Ready-made configurations for the paper's four data types (§5). Sketch
// sizes follow Table 1: 96 bits per image region vector, 600 bits per audio
// word vector, 800 bits per 3D shape descriptor.

// ImageConfig returns the region-based image search configuration
// (paper §5.1): 14-d region features (9 color moments + 5 bounding-box
// descriptors), √size segment weights (applied by the extractor), ℓ₁
// segment distance and thresholded EMD ranking.
func ImageConfig(dir string) Config {
	min, max := imagefeat.FeatureBounds()
	return Config{
		Dir:           dir,
		Sketch:        sketch.Params{N: 96, K: 1, Min: min, Max: max, Seed: 1},
		RankThreshold: 2.0, // cap region outlier distances before EMD
	}
}

// ImageExtractor reads .png / .ppm files through the image plug-in.
func ImageExtractor() Extractor {
	ex := &imagefeat.Extractor{}
	return ExtractorFunc(func(path string) (Object, error) {
		im, err := imagefeat.ReadFile(path)
		if err != nil {
			return Object{}, err
		}
		return ex.Extract(path, im)
	})
}

// AudioConfig returns the speech search configuration (paper §5.2): 192-d
// word features (6 MFCCs × 32 windows), length-proportional weights, ℓ₁
// segment distance with 600-bit sketches and EMD ranking (order-invariant
// across word order).
func AudioConfig(dir string) Config {
	min, max := audiofeat.DefaultFeatureBounds()
	return Config{
		Dir:    dir,
		Sketch: sketch.Params{N: 600, K: 1, Min: min, Max: max, Seed: 2},
	}
}

// AudioExtractor reads mono 16-bit PCM .wav files through the audio
// plug-in, treating each file as one utterance.
func AudioExtractor(sampleRate int) Extractor {
	ex := audiofeat.NewExtractor(audiofeat.Segmenter{SampleRate: sampleRate})
	return ExtractorFunc(func(path string) (Object, error) {
		samples, rate, err := audiofeat.ReadWAVFile(path)
		if err != nil {
			return Object{}, err
		}
		if sampleRate != 0 && rate != sampleRate {
			return Object{}, fmt.Errorf("ferret: %s has sample rate %d, system expects %d", path, rate, sampleRate)
		}
		return ex.Extract(path, samples)
	})
}

// IngestRecording splits a long speech recording into utterance-level data
// objects at pauses (paper §5.2's first segmentation step: ten or more
// low-energy 20 ms windows mark an utterance boundary) and ingests each
// utterance separately under "<path>#uNN". It returns the new IDs.
func (s *System) IngestRecording(path string, sampleRate int, a Attrs) ([]ID, error) {
	samples, rate, err := audiofeat.ReadWAVFile(path)
	if err != nil {
		return nil, err
	}
	if sampleRate != 0 && rate != sampleRate {
		return nil, fmt.Errorf("ferret: %s has sample rate %d, want %d", path, rate, sampleRate)
	}
	seg := audiofeat.Segmenter{SampleRate: rate}
	ex := audiofeat.NewExtractor(seg)
	spans := seg.Utterances(samples)
	if len(spans) == 0 {
		return nil, fmt.Errorf("ferret: no utterances detected in %s", path)
	}
	ids := make([]ID, 0, len(spans))
	for i, span := range spans {
		key := fmt.Sprintf("%s#u%02d", path, i)
		o, err := ex.Extract(key, samples[span.Start:span.End])
		if err != nil {
			continue // an unvoicable span is skipped, not fatal
		}
		attrs := Attrs{"recording": path, "utterance": fmt.Sprintf("%d", i)}
		for k, v := range a {
			attrs[k] = v
		}
		id, err := s.Ingest(o, attrs)
		if err != nil {
			return ids, err
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("ferret: no usable utterances in %s", path)
	}
	return ids, nil
}

// ShapeConfig returns the 3D shape search configuration (paper §5.3):
// single-segment 544-d spherical harmonic descriptors with ℓ₁ distance and
// 800-bit sketches.
func ShapeConfig(dir string) Config {
	min, max := shape.FeatureBounds()
	return Config{
		Dir:    dir,
		Sketch: sketch.Params{N: 800, K: 1, Min: min, Max: max, Seed: 3},
	}
}

// ShapeExtractor reads .off polygonal models through the shape plug-in.
func ShapeExtractor() Extractor {
	return ExtractorFunc(func(path string) (Object, error) {
		f, err := os.Open(path)
		if err != nil {
			return Object{}, err
		}
		defer f.Close()
		m, err := shape.ParseOFF(f)
		if err != nil {
			return Object{}, err
		}
		return shape.Extract(path, m)
	})
}

// GenomicConfig returns the gene-expression search configuration
// (paper §5.4) for profiles bounded per condition by [min, max]. distance
// selects the segment (= object) distance: "pearson", "spearman" or "l1".
// Sketches estimate the ℓ₁ structure; correlation distances are used in
// the (exact) ranking phase.
func GenomicConfig(dir string, min, max []float32, distance string) (Config, error) {
	dist, err := genomic.DistanceByName(distance)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Dir:             dir,
		Sketch:          sketch.Params{N: 256, K: 1, Min: min, Max: max, Seed: 4},
		SegmentDistance: dist,
	}, nil
}

// GenomicExtractor treats each file as a TSV microarray and is rarely what
// you want for ingest (a matrix holds many genes); use IngestMatrix
// instead. It extracts the first row, mainly to satisfy QUERYFILE.
func GenomicExtractor() Extractor {
	return ExtractorFunc(func(path string) (Object, error) {
		f, err := os.Open(path)
		if err != nil {
			return Object{}, err
		}
		defer f.Close()
		m, err := genomic.ParseTSV(f)
		if err != nil {
			return Object{}, err
		}
		if len(m.Genes) == 0 {
			return Object{}, fmt.Errorf("ferret: %s holds no genes", path)
		}
		return m.RowObject(0), nil
	})
}

// SensorConfig returns a sensor/time-series search configuration (the §8
// "other sensor data" extension): multivariate recordings segmented into
// overlapping windows of per-channel statistics, with activity-weighted
// segments and ℓ₁/EMD matching. lo and hi bound each channel's values.
func SensorConfig(dir string, lo, hi []float32) Config {
	min, max := sensorfeat.Bounds(lo, hi)
	return Config{
		Dir:    dir,
		Sketch: sketch.Params{N: 128, K: 1, Min: min, Max: max, Seed: 5},
	}
}

// SensorExtractor reads .csv multivariate recordings through the sensor
// plug-in. windowSamples/strideSamples of 0 use the defaults (64/32).
func SensorExtractor(windowSamples, strideSamples int) Extractor {
	ex := &sensorfeat.Extractor{Seg: sensorfeat.Segmenter{Window: windowSamples, Stride: strideSamples}}
	return ExtractorFunc(func(path string) (Object, error) {
		f, err := os.Open(path)
		if err != nil {
			return Object{}, err
		}
		defer f.Close()
		s, err := sensorfeat.ParseCSV(f)
		if err != nil {
			return Object{}, err
		}
		return ex.Extract(path, s)
	})
}

// VideoConfig returns a video search configuration (the §8 "video"
// extension): frame sequences segmented into shots, each a 12-d segment
// (color moments, motion energy, temporal variation, position) weighted by
// √length, matched with EMD so re-edited shot orders still rank close.
func VideoConfig(dir string) Config {
	min, max := videofeat.FeatureBounds()
	return Config{
		Dir:    dir,
		Sketch: sketch.Params{N: 96, K: 1, Min: min, Max: max, Seed: 6},
	}
}

// VideoExtractor reads videos stored as directories of numbered .png/.ppm
// frames through the video plug-in.
func VideoExtractor() Extractor {
	ex := &videofeat.Extractor{}
	return ExtractorFunc(func(path string) (Object, error) {
		return ex.Extract(path)
	})
}

// Matrix is a gene-expression microarray (rows = genes).
type Matrix = genomic.Matrix

// ParseMatrixTSV reads a microarray matrix in tab-separated form.
func ParseMatrixTSV(path string) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return genomic.ParseTSV(f)
}

// IngestMatrix ingests every gene (row) of a microarray matrix.
func (s *System) IngestMatrix(m *Matrix, extraAttrs Attrs) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	added := 0
	for i := range m.Genes {
		a := Attrs{"gene": m.Genes[i]}
		for k, v := range extraAttrs {
			a[k] = v
		}
		if _, err := s.Ingest(m.RowObject(i), a); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// RelaxedDurability switches a config to the paper's relaxed ACID mode
// (§4.1.3): commits flush to the OS immediately but fsync only
// periodically, trading a bounded window of potentially lost updates for
// much higher ingest throughput. The default is full per-commit
// durability.
func RelaxedDurability(cfg Config) Config {
	cfg.Store.Sync = kvstore.SyncPeriodic
	return cfg
}
